// Package core implements the paper's contribution: an anomaly detection
// and diagnosis system for process control systems that distinguishes
// process disturbances from intrusions by monitoring *two views* of the
// same plant data with one MSPC model:
//
//   - the controller view (what controllers receive and send — forgeable
//     by a man-in-the-middle), and
//   - the process view (what the sensors actually measured and the
//     actuators actually received).
//
// Detection is classical PCA-based MSPC (D/T² and Q/SPE charts, 99 %
// limits, three-consecutive run rule). Diagnosis computes oMEDA bar
// profiles per view over the first out-of-control observations. The
// classifier then exploits a simple physical truth: a variable cannot be
// simultaneously above normal in one view and below normal in the other —
// a sign flip across views on an implicated variable localizes a forged
// channel. Agreement across views indicates a genuine disturbance, and a
// diffuse profile with slow detection is the DoS signature the paper
// reports.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pcsmon/internal/dataset"
	"pcsmon/internal/historian"
	"pcsmon/internal/mat"
	"pcsmon/internal/mspc"
	"pcsmon/internal/omeda"
)

// Package-level sentinel errors.
var (
	// ErrBadInput is returned for malformed inputs.
	ErrBadInput = errors.New("core: invalid input")
	// ErrNotCalibrated is returned when analysis is attempted before
	// calibration.
	ErrNotCalibrated = errors.New("core: system not calibrated")
)

// Verdict is the classifier's conclusion about an anomaly.
type Verdict int

// Possible verdicts.
const (
	// VerdictNormal: no anomaly detected in either view.
	VerdictNormal Verdict = iota + 1
	// VerdictDisturbance: anomaly with consistent diagnosis across views —
	// a genuine process disturbance or fault.
	VerdictDisturbance
	// VerdictIntegrityAttack: the two views disagree about an implicated
	// variable's deviation direction — a forged channel.
	VerdictIntegrityAttack
	// VerdictDoS: controller-side anomaly with a silent or inconsistent
	// process side and/or a diffuse diagnosis with slow detection —
	// consistent with a hold-last-value denial of service.
	VerdictDoS
	// VerdictAnomaly: detected but not classifiable by the rules.
	VerdictAnomaly
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictNormal:
		return "normal"
	case VerdictDisturbance:
		return "disturbance"
	case VerdictIntegrityAttack:
		return "integrity-attack"
	case VerdictDoS:
		return "dos-attack"
	case VerdictAnomaly:
		return "anomaly"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config parameterizes the system. The zero value selects the paper's
// settings.
type Config struct {
	// Components fixes the number of principal components (0 = select by
	// the 90 % cumulative-variance rule).
	Components int
	// RunLength is the run rule length (0 = the paper's 3 consecutive
	// observations beyond the 99 % limit).
	RunLength int
	// SPEMethod selects the Q-limit method (0 = Jackson–Mudholkar).
	SPEMethod mspc.SPEMethod
	// DiagnoseWindow is the number of observations from the start of the
	// out-of-control run used for oMEDA (0 = 20).
	DiagnoseWindow int
	// TopFrac: variables with |bar| ≥ TopFrac·max|bar| count as implicated
	// (0 = 0.5).
	TopFrac float64
	// DominanceMin: below this oMEDA dominance ratio a diagnosis counts as
	// diffuse — the DoS signature (0 = 15).
	DominanceMin float64
	// SlowSamples: detections with run length beyond this many samples
	// count as slow, reinforcing the DoS verdict (0 = 300, i.e. ~9
	// minutes at the paper's 1.8 s cadence).
	SlowSamples int
}

func (c Config) withDefaults() Config {
	if c.RunLength == 0 {
		c.RunLength = mspc.DefaultRunLength
	}
	if c.DiagnoseWindow == 0 {
		c.DiagnoseWindow = 20
	}
	if c.TopFrac == 0 {
		c.TopFrac = 0.5
	}
	if c.DominanceMin == 0 {
		c.DominanceMin = 15
	}
	if c.SlowSamples == 0 {
		c.SlowSamples = 300
	}
	return c
}

// System is a calibrated two-view monitoring system. It is safe for
// concurrent use after calibration.
type System struct {
	cfg     Config
	monitor *mspc.Monitor

	// Calibration moments (engineering units), retained so the adaptive
	// recalibration layer can seed its tracker with the calibration prior.
	calCov   *mat.Matrix
	calMeans []float64
	calN     int
}

// Calibrate builds the MSPC model from normal-operation observations
// (53-variable rows as produced by the historian; under NOC the two views
// are identical, so either serves as calibration data).
func Calibrate(noc *dataset.Dataset, cfg Config) (*System, error) {
	if noc == nil || noc.Rows() < 10 {
		return nil, fmt.Errorf("core: calibration needs data: %w", ErrBadInput)
	}
	if noc.Cols() != historian.NumVars {
		return nil, fmt.Errorf("core: calibration has %d cols, want %d: %w",
			noc.Cols(), historian.NumVars, ErrBadInput)
	}
	cfg = cfg.withDefaults()
	x, err := noc.Matrix()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	opts := []mspc.Option{}
	if cfg.Components > 0 {
		opts = append(opts, mspc.WithComponents(cfg.Components))
	}
	if cfg.SPEMethod != 0 {
		opts = append(opts, mspc.WithSPEMethod(cfg.SPEMethod))
	}
	mon, err := mspc.Calibrate(x, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cov, err := mat.Covariance(x)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		cfg: cfg, monitor: mon,
		calCov: cov, calMeans: mat.ColMeans(x), calN: x.Rows(),
	}, nil
}

// CalibrateCov builds the system from streamed covariance statistics
// (means + covariance + count), the memory-bounded path for paper-scale
// calibration data.
func CalibrateCov(cov *mat.Matrix, means []float64, n int, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	opts := []mspc.Option{}
	if cfg.Components > 0 {
		opts = append(opts, mspc.WithComponents(cfg.Components))
	}
	if cfg.SPEMethod != 0 {
		opts = append(opts, mspc.WithSPEMethod(cfg.SPEMethod))
	}
	mon, err := mspc.CalibrateCov(cov, means, n, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		cfg: cfg, monitor: mon,
		calCov: cov.Clone(), calMeans: append([]float64(nil), means...), calN: n,
	}, nil
}

// Monitor exposes the underlying MSPC monitor (for charting).
func (s *System) Monitor() *mspc.Monitor { return s.monitor }

// CalibrationMoments returns the covariance, means and observation count
// the system was calibrated from — the prior the adaptive recalibration
// layer seeds its tracker with. The returned values are owned by the
// system; callers must not mutate them.
func (s *System) CalibrationMoments() (cov *mat.Matrix, means []float64, n int) {
	return s.calCov, s.calMeans, s.calN
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// ViewAnalysis is the detection + diagnosis result for one view.
type ViewAnalysis struct {
	// Detected reports whether the run rule fired in this view.
	Detected bool
	// DetectionIndex and RunStart are observation indices (valid when
	// Detected).
	DetectionIndex int
	RunStart       int
	// RunLengthSamples counts samples from onset to detection (valid when
	// Detected and onset was provided).
	RunLengthSamples int
	// Time is RunLengthSamples in wall-clock terms.
	Time time.Duration
	// Charts lists which statistic(s) fired.
	Charts []mspc.Chart
	// OMEDA is the diagnosis profile over the 53 variables.
	OMEDA []float64
	// Top lists implicated variable indices (|bar| ≥ TopFrac·max).
	Top []int
	// Dominance is the oMEDA dominance ratio (max/median of |bars|).
	Dominance float64
	// Contrib holds the classical T²/SPE contribution profiles over the
	// same diagnosis window, for comparison with the oMEDA bars (nil when
	// the view had no detection).
	Contrib *Contributions
}

// Report is the full two-view result for one run.
type Report struct {
	Controller ViewAnalysis
	Process    ViewAnalysis
	// FrozenProc lists observation columns whose process view is frozen
	// (variance collapsed) over the diagnosis window while the controller
	// view keeps moving — the hold-last-value signature on the actuator
	// link. FrozenCtrl is the mirror for the sensor link.
	FrozenProc []int
	FrozenCtrl []int
	// Diverged lists observation columns whose two views drifted apart by
	// more than divergeSigmas calibration standard deviations over the
	// diagnosis window — direct evidence of forgery (the cross-view
	// consistency check the paper's discussion motivates).
	Diverged []int
	// Verdict is the classifier's conclusion.
	Verdict Verdict
	// AttackedVar is the observation column of the localized forged
	// channel (-1 when not applicable). Use historian.VarName for display.
	AttackedVar int
	// Explanation is a one-paragraph human-readable rationale.
	Explanation string
}

// AnalyzeViews runs detection and diagnosis on both views of one run.
// onset is the observation index at which the anomaly was injected (used
// for run-length accounting; pass 0 if unknown). sample is the observation
// interval.
//
// It is a thin wrapper over the incremental path: the rows are replayed
// through an OnlineAnalyzer, so the batch and streaming analyses share one
// implementation (and one result). Views of unequal length are supported;
// the replay stops early once the report can no longer change.
func (s *System) AnalyzeViews(ctrl, proc *dataset.Dataset, onset int, sample time.Duration) (*Report, error) {
	if s == nil || s.monitor == nil {
		return nil, ErrNotCalibrated
	}
	if ctrl == nil || proc == nil || ctrl.Rows() == 0 || proc.Rows() == 0 {
		return nil, fmt.Errorf("core: empty views: %w", ErrBadInput)
	}
	if ctrl.Cols() != historian.NumVars || proc.Cols() != historian.NumVars {
		return nil, fmt.Errorf("core: views must have %d cols: %w", historian.NumVars, ErrBadInput)
	}
	oa, err := s.NewOnlineAnalyzer(onset, sample)
	if err != nil {
		return nil, err
	}
	n := ctrl.Rows()
	if proc.Rows() > n {
		n = proc.Rows()
	}
	for i := 0; i < n && !oa.Settled(); i++ {
		var cr, pr []float64
		if i < ctrl.Rows() {
			cr = ctrl.RowView(i)
		}
		if i < proc.Rows() {
			pr = proc.RowView(i)
		}
		if _, err := oa.Push(cr, pr); err != nil {
			return nil, err
		}
	}
	return oa.Finish()
}

// minUsefulStd guards against channels that are constant in calibration
// (their scaler divisor is a placeholder 1).
const minUsefulStd = 1e-9

// DiagnoseGroup computes the oMEDA profile of a group of observations in
// engineering units (rows of 53 variables) against the calibrated model —
// the primitive the scenario runner uses to pool "first out-of-control
// observations" across runs, as the paper does.
func (s *System) DiagnoseGroup(rows [][]float64) ([]float64, error) {
	if s == nil || s.monitor == nil {
		return nil, ErrNotCalibrated
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no observations to diagnose: %w", ErrBadInput)
	}
	scaled := make([][]float64, len(rows))
	for i, r := range rows {
		sr, err := s.monitor.Scaler().ApplyRow(r, nil)
		if err != nil {
			return nil, fmt.Errorf("core: scaling row %d: %w", i, err)
		}
		scaled[i] = sr
	}
	return omeda.ComputeGroup(s.monitor.Model(), scaled)
}

// classify applies the two-view rules. See the package comment for the
// rationale; ClassifyProfiles documents the exact rule order.
func (s *System) classify(rep *Report) {
	// Frozen-channel evidence takes precedence: a channel whose process
	// view stopped moving while the two views drift apart is a
	// hold-last-value DoS on the actuator link (and the mirror image on
	// the sensor link). The evidence is self-sufficient — it requires a
	// cross-view divergence that identical (unattacked) views can never
	// produce.
	if len(rep.FrozenProc) > 0 {
		j := rep.FrozenProc[0]
		rep.Verdict = VerdictDoS
		rep.AttackedVar = j
		rep.Explanation = fmt.Sprintf(
			"%s is frozen at the process side while the controller keeps adjusting it — hold-last-value DoS on the actuator link",
			historian.VarName(j))
		return
	}
	if len(rep.FrozenCtrl) > 0 {
		j := rep.FrozenCtrl[0]
		rep.Verdict = VerdictDoS
		rep.AttackedVar = j
		rep.Explanation = fmt.Sprintf(
			"%s is frozen at the controller side while the real signal keeps moving — hold-last-value DoS on the sensor link",
			historian.VarName(j))
		return
	}
	verdict, attacked, why := ClassifyProfiles(
		rep.Controller, rep.Process, s.cfg)
	// Fallback: when the oMEDA profiles alone read "disturbance" or
	// "anomaly" but the raw views demonstrably diverged, forgery is proven
	// (a disturbance cannot make the two views disagree). This is the
	// cross-view consistency extension the paper's discussion motivates;
	// it fires after the paper's oMEDA rules so their behaviour stays
	// primary.
	if (verdict == VerdictDisturbance || verdict == VerdictAnomaly) && len(rep.Diverged) > 0 {
		// Blame the most implicated diverged channel.
		best := rep.Diverged[0]
		bestScore := -1.0
		for _, j := range rep.Diverged {
			score := math.Max(absAt(rep.Controller.OMEDA, j), absAt(rep.Process.OMEDA, j))
			if score > bestScore {
				bestScore = score
				best = j
			}
		}
		rep.Verdict = VerdictIntegrityAttack
		rep.AttackedVar = best
		rep.Explanation = fmt.Sprintf(
			"the two views of %s diverge although the oMEDA profiles alone look disturbance-like — a forged channel (cross-view consistency check)",
			historian.VarName(best))
		return
	}
	rep.Verdict = verdict
	rep.AttackedVar = attacked
	rep.Explanation = why
}

func absAt(vals []float64, j int) float64 {
	if j < 0 || j >= len(vals) {
		return 0
	}
	return math.Abs(vals[j])
}

// ClassifyProfiles turns the two per-view analyses into a verdict:
//
//  1. Neither view detected → Normal.
//  2. A variable implicated in both views with opposite deviation signs →
//     IntegrityAttack on that variable (a channel cannot truly be both
//     above and below normal; one view must be forged).
//  3. An XMV implicated on the controller side while the process side is
//     silent or shows that XMV unremarkable → DoS on that XMV (the
//     controller's commands never reach the plant, its error integrates).
//  4. Diffuse diagnosis (low dominance) in every detecting view, with slow
//     detection → DoS (suspected, unlocalized).
//  5. Views agree (top variables of each view deviate in the same
//     direction in the other view) → Disturbance.
//  6. Otherwise → Anomaly (detected, unclassified).
func ClassifyProfiles(ctrl, proc ViewAnalysis, cfg Config) (Verdict, int, string) {
	cfg = cfg.withDefaults()
	if !ctrl.Detected && !proc.Detected {
		return VerdictNormal, -1, "no chart exceeded its control limit with the run rule"
	}

	// Rule 2: sign flip on any implicated variable. The variable must be a
	// top variable in at least one view; in the other view only a
	// meaningful sign is required (a forged channel is often shrunk by the
	// model in the view where the forgery conflicts with the learned
	// correlation structure — cf. the paper's Fig. 4b, where only XMEAS(1)
	// stands out at the controller while Fig. 5b pins XMV(3)).
	if ctrl.Detected && proc.Detected {
		for _, j := range unionInts(ctrl.Top, proc.Top) {
			sc := signAt(ctrl.OMEDA, j)
			sp := signAt(proc.OMEDA, j)
			if sc != 0 && sp != 0 && sc != sp &&
				materialAt(ctrl.OMEDA, j, 0.05) && materialAt(proc.OMEDA, j, 0.05) {
				kind := "sensor"
				if historian.IsXMV(j) {
					kind = "actuator"
				}
				return VerdictIntegrityAttack, j, fmt.Sprintf(
					"%s deviates %s in the controller view but %s in the process view — the %s channel is forged",
					historian.VarName(j), signWord(sc), signWord(sp), kind)
			}
		}
	}

	// Rule 3: controller-side XMV anomaly with a silent process side.
	if ctrl.Detected {
		for _, j := range ctrl.Top {
			if !historian.IsXMV(j) {
				continue
			}
			procSilent := !proc.Detected
			procUnremarkable := proc.Detected && !materialAt(proc.OMEDA, j, 0.25)
			if procSilent || procUnremarkable {
				return VerdictDoS, j, fmt.Sprintf(
					"%s drifts in the controller view while the process view shows no matching effect — commands are not reaching the plant (hold-last-value DoS)",
					historian.VarName(j))
			}
		}
	}

	// Rule 4: diffuse and slow everywhere → unlocalized DoS suspicion.
	diffuse := true
	slow := true
	for _, v := range []ViewAnalysis{ctrl, proc} {
		if !v.Detected {
			continue
		}
		if v.Dominance >= cfg.DominanceMin {
			diffuse = false
		}
		if v.RunLengthSamples < cfg.SlowSamples {
			slow = false
		}
	}
	if diffuse && slow {
		return VerdictDoS, -1, "slow detection with no variable standing out in either view — consistent with a denial-of-service attack"
	}

	// Rule 5: consistent views → disturbance.
	if agreeViews(ctrl, proc) {
		return VerdictDisturbance, -1, "both views implicate the same variables with the same deviation directions — a genuine process disturbance"
	}

	return VerdictAnomaly, -1, "anomaly detected but the view profiles fit no known pattern"
}

// agreeViews reports whether every top variable of each detecting view
// deviates in the same direction in the other view (or the other view did
// not detect, in which case a single view cannot contradict itself).
func agreeViews(ctrl, proc ViewAnalysis) bool {
	if ctrl.Detected != proc.Detected {
		// Exactly one view saw the event: treat as agreement only when the
		// detecting view's diagnosis exists.
		v := ctrl
		if proc.Detected {
			v = proc
		}
		return len(v.Top) > 0
	}
	for _, j := range unionInts(ctrl.Top, proc.Top) {
		sc := signAt(ctrl.OMEDA, j)
		sp := signAt(proc.OMEDA, j)
		// Immaterial bars carry no sign information.
		if sc != 0 && sp != 0 && sc != sp &&
			materialAt(ctrl.OMEDA, j, 0.05) && materialAt(proc.OMEDA, j, 0.05) {
			return false
		}
	}
	return true
}

func signAt(vals []float64, j int) int {
	if j < 0 || j >= len(vals) {
		return 0
	}
	switch {
	case vals[j] > 0:
		return 1
	case vals[j] < 0:
		return -1
	default:
		return 0
	}
}

func materialAt(vals []float64, j int, frac float64) bool {
	if j < 0 || j >= len(vals) {
		return false
	}
	var maxAbs float64
	for _, v := range vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs > 0 && math.Abs(vals[j]) >= frac*maxAbs
}

func signWord(s int) string {
	if s > 0 {
		return "above normal"
	}
	return "below normal"
}

func unionInts(a, b []int) []int {
	seen := make(map[int]struct{}, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, s := range [][]int{a, b} {
		for _, v := range s {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
	}
	return out
}

// CrossViewCheck is the extension the paper's discussion motivates: a
// direct sample-wise comparison of the two views. It returns the
// observation columns whose views diverge by more than tol calibration
// standard deviations on average over the window [from, to). Any divergence
// at all proves a forged channel — an attacker must forge both the
// manipulated variable and the associated measurement to evade it.
func (s *System) CrossViewCheck(ctrl, proc *dataset.Dataset, from, to int, tol float64) ([]int, error) {
	if s == nil || s.monitor == nil {
		return nil, ErrNotCalibrated
	}
	if ctrl == nil || proc == nil || ctrl.Rows() != proc.Rows() {
		return nil, fmt.Errorf("core: views of different lengths: %w", ErrBadInput)
	}
	if from < 0 || to > ctrl.Rows() || from >= to {
		return nil, fmt.Errorf("core: window [%d,%d) of %d rows: %w", from, to, ctrl.Rows(), ErrBadInput)
	}
	if tol <= 0 {
		tol = 3
	}
	stds := s.monitor.Scaler().Stds()
	m := ctrl.Cols()
	acc := make([]float64, m)
	for i := from; i < to; i++ {
		cr, pr := ctrl.RowView(i), proc.RowView(i)
		for j := 0; j < m; j++ {
			acc[j] += math.Abs(cr[j] - pr[j])
		}
	}
	n := float64(to - from)
	var out []int
	for j := 0; j < m; j++ {
		if acc[j]/n > tol*stds[j] {
			out = append(out, j)
		}
	}
	return out, nil
}

// ChartSeries extracts the D and Q statistic series of one view for
// plotting (the paper's Figure 1-style control charts).
func (s *System) ChartSeries(view *dataset.Dataset) (d, q []float64, limits mspc.Limits, err error) {
	if s == nil || s.monitor == nil {
		return nil, nil, mspc.Limits{}, ErrNotCalibrated
	}
	d = make([]float64, view.Rows())
	q = make([]float64, view.Rows())
	for i := 0; i < view.Rows(); i++ {
		st, err := s.monitor.Compute(view.RowView(i))
		if err != nil {
			return nil, nil, mspc.Limits{}, fmt.Errorf("core: row %d: %w", i, err)
		}
		d[i] = st.D
		q[i] = st.Q
	}
	return d, q, s.monitor.Limits(), nil
}
