package core

import (
	"testing"
	"time"

	"pcsmon/internal/dataset"
	"pcsmon/internal/historian"
	"pcsmon/internal/te"
)

// viewsWithFreeze builds aligned views where, after row `from`, one view's
// channel is frozen at its calibration mean while the other view drifts
// away — the hold-last-value pattern.
func (f *synthFixture) viewsWithFreeze(t *testing.T, normal, frozen int, channel int, freezeProc bool) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	means := f.sys.Monitor().Scaler().Means()
	stds := f.sys.Monitor().Scaler().Stds()
	for i := 0; i < normal+frozen; i++ {
		row := f.nocRow()
		crow := append([]float64(nil), row...)
		prow := append([]float64(nil), row...)
		if i >= normal {
			drift := means[channel] + (2.0+0.02*float64(i-normal))*stds[channel]
			if freezeProc {
				prow[channel] = means[channel] // held
				crow[channel] = drift          // the commands keep moving
			} else {
				crow[channel] = means[channel]
				prow[channel] = drift
			}
			// Give the detector something to fire on in both views: a
			// mild co-moving deviation elsewhere.
			crow[5] += 8 * stds[5]
			prow[5] += 8 * stds[5]
		}
		if err := cd.Append(crow); err != nil {
			t.Fatal(err)
		}
		if err := pd.Append(prow); err != nil {
			t.Fatal(err)
		}
	}
	return cd, pd
}

func TestFrozenProcessSideDetected(t *testing.T) {
	f := newSynthFixture(t, 301)
	xmv := te.NumXMEAS + te.XmvAFeed
	cd, pd := f.viewsWithFreeze(t, 120, 60, xmv, true)
	rep, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range rep.FrozenProc {
		if j == xmv {
			found = true
		}
	}
	if !found {
		t.Errorf("FrozenProc = %v, want to include XMV(3)=%d", rep.FrozenProc, xmv)
	}
	if rep.Verdict != VerdictDoS {
		t.Errorf("verdict = %v (%s), want dos-attack", rep.Verdict, rep.Explanation)
	}
	if rep.AttackedVar != xmv {
		t.Errorf("attacked var = %d, want %d", rep.AttackedVar, xmv)
	}
}

func TestFrozenControllerSideDetected(t *testing.T) {
	f := newSynthFixture(t, 302)
	const xmeas = 3
	cd, pd := f.viewsWithFreeze(t, 120, 60, xmeas, false)
	rep, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range rep.FrozenCtrl {
		if j == xmeas {
			found = true
		}
	}
	if !found {
		t.Errorf("FrozenCtrl = %v, want to include %d", rep.FrozenCtrl, xmeas)
	}
	if rep.Verdict != VerdictDoS {
		t.Errorf("verdict = %v (%s), want dos-attack (sensor link)", rep.Verdict, rep.Explanation)
	}
}

func TestDivergedChannelsRecorded(t *testing.T) {
	f := newSynthFixture(t, 303)
	// A channel that splits between views without freezing: both views
	// keep variance but drift apart.
	cd, pd := f.viewsWithShift(t, 120, 60,
		map[int]float64{7: +6, 5: 8},
		map[int]float64{7: -6, 5: 8})
	rep, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range rep.Diverged {
		if j == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("Diverged = %v, want to include 7", rep.Diverged)
	}
	if rep.Verdict != VerdictIntegrityAttack {
		t.Errorf("verdict = %v (%s), want integrity-attack", rep.Verdict, rep.Explanation)
	}
}

func TestNoFreezeEvidenceOnIdenticalViews(t *testing.T) {
	f := newSynthFixture(t, 304)
	shift := map[int]float64{2: -10}
	cd, pd := f.viewsWithShift(t, 120, 60, shift, shift)
	rep, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FrozenProc) != 0 || len(rep.FrozenCtrl) != 0 || len(rep.Diverged) != 0 {
		t.Errorf("identical views produced evidence: frozen %v/%v diverged %v",
			rep.FrozenProc, rep.FrozenCtrl, rep.Diverged)
	}
	if rep.Verdict != VerdictDisturbance {
		t.Errorf("verdict = %v, want disturbance", rep.Verdict)
	}
}

func TestFreezeFarFromMeanIsNotDoS(t *testing.T) {
	// A channel held constant far from its calibration mean is an
	// integrity payload (forged constant), not a hold-last-value DoS.
	f := newSynthFixture(t, 305)
	cd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	means := f.sys.Monitor().Scaler().Means()
	stds := f.sys.Monitor().Scaler().Stds()
	const ch = 4
	for i := 0; i < 180; i++ {
		row := f.nocRow()
		crow := append([]float64(nil), row...)
		prow := append([]float64(nil), row...)
		if i >= 120 {
			// Forged constant at −10σ in the controller view; the real
			// channel responds upward.
			crow[ch] = means[ch] - 10*stds[ch]
			prow[ch] = means[ch] + (3+0.05*float64(i-120))*stds[ch]
		}
		if err := cd.Append(crow); err != nil {
			t.Fatal(err)
		}
		if err := pd.Append(prow); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.FrozenCtrl {
		if j == ch {
			t.Errorf("far-from-mean constant flagged as frozen (DoS) on channel %d", ch)
		}
	}
	if rep.Verdict != VerdictIntegrityAttack {
		t.Errorf("verdict = %v (%s), want integrity-attack", rep.Verdict, rep.Explanation)
	}
}
