package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"pcsmon/internal/dataset"
	"pcsmon/internal/historian"
	"pcsmon/internal/te"
)

// pushAll replays two datasets through a fresh online analyzer row by row,
// exactly as a live feed would, and returns the analyzer.
func pushAll(t *testing.T, sys *System, ctrl, proc *dataset.Dataset, onset int) *OnlineAnalyzer {
	t.Helper()
	oa, err := sys.NewOnlineAnalyzer(onset, time.Second)
	if err != nil {
		t.Fatalf("NewOnlineAnalyzer: %v", err)
	}
	n := ctrl.Rows()
	if proc.Rows() > n {
		n = proc.Rows()
	}
	for i := 0; i < n; i++ {
		var cr, pr []float64
		if i < ctrl.Rows() {
			cr = ctrl.RowView(i)
		}
		if i < proc.Rows() {
			pr = proc.RowView(i)
		}
		if _, err := oa.Push(cr, pr); err != nil {
			t.Fatalf("Push row %d: %v", i, err)
		}
	}
	return oa
}

// TestOnlineMatchesBatch is the streaming/batch parity golden test: for
// every anomaly pattern the classifier distinguishes, feeding the run one
// observation at a time must produce the identical Report (detection
// indices, run starts, verdict, oMEDA profiles, frozen/diverged evidence)
// as the batch entry point.
func TestOnlineMatchesBatch(t *testing.T) {
	xmv3 := te.NumXMEAS + te.XmvAFeed
	cases := []struct {
		name       string
		seed       int64
		ctrl, proc map[int]float64 // per-view shifts after the onset
	}{
		{"normal", 201, nil, nil},
		{"disturbance", 202,
			map[int]float64{te.XmeasAFeed: -12},
			map[int]float64{te.XmeasAFeed: -12}},
		{"sign-flip integrity", 203,
			map[int]float64{te.XmeasAFeed: -12},
			map[int]float64{te.XmeasAFeed: +12}},
		{"actuator integrity", 204,
			map[int]float64{xmv3: +10, te.XmeasAFeed: -12},
			map[int]float64{xmv3: -10, te.XmeasAFeed: -12}},
		{"ctrl-only dos", 205,
			map[int]float64{xmv3: +9},
			nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newSynthFixture(t, tc.seed)
			cd, pd := f.viewsWithShift(t, 100, 60, tc.ctrl, tc.proc)
			const onset = 100
			batch, err := f.sys.AnalyzeViews(cd, pd, onset, time.Second)
			if err != nil {
				t.Fatalf("AnalyzeViews: %v", err)
			}
			online, err := pushAll(t, f.sys, cd, pd, onset).Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if !reflect.DeepEqual(batch, online) {
				t.Errorf("online report differs from batch:\nbatch:  %+v\nonline: %+v", batch, online)
			}
		})
	}
}

// TestOnlineMatchesBatchFrozen covers the frozen-channel (hold-last-value
// DoS) evidence path, whose window statistics are accumulated incrementally
// on the online path.
func TestOnlineMatchesBatchFrozen(t *testing.T) {
	f := newSynthFixture(t, 211)
	xmv := te.NumXMEAS + te.XmvAFeed
	cd, pd := f.viewsWithFreeze(t, 120, 60, xmv, true)
	batch, err := f.sys.AnalyzeViews(cd, pd, 120, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	online, err := pushAll(t, f.sys, cd, pd, 120).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, online) {
		t.Errorf("online report differs from batch:\nbatch:  %+v\nonline: %+v", batch, online)
	}
	if online.Verdict != VerdictDoS {
		t.Errorf("verdict = %v, want dos-attack", online.Verdict)
	}
}

// TestOnlineUnequalViews checks that a view ending early (nil rows) matches
// the batch analysis of truncated datasets.
func TestOnlineUnequalViews(t *testing.T) {
	f := newSynthFixture(t, 212)
	shift := map[int]float64{te.XmeasAFeed: -12}
	cd, pd := f.viewsWithShift(t, 100, 60, shift, shift)
	short, err := pd.Slice(0, 130)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := f.sys.AnalyzeViews(cd, short, 100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	online, err := pushAll(t, f.sys, cd, short, 100).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, online) {
		t.Errorf("online report differs from batch on unequal views:\nbatch:  %+v\nonline: %+v", batch, online)
	}
}

// TestOnlinePreOnsetFalseAlarm: a burst of out-of-control samples before
// the declared onset must not latch a detection — only the post-onset event
// counts, in both paths.
func TestOnlinePreOnsetFalseAlarm(t *testing.T) {
	f := newSynthFixture(t, 213)
	cd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 220; i++ {
		row := f.nocRow()
		// Pre-onset burst at [40, 50), the real event from 150.
		if (i >= 40 && i < 50) || i >= 150 {
			row[te.XmeasAFeed] -= 12 * f.stds[te.XmeasAFeed]
		}
		if err := cd.Append(row); err != nil {
			t.Fatal(err)
		}
		if err := pd.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	const onset = 150
	batch, err := f.sys.AnalyzeViews(cd, pd, onset, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	oa := pushAll(t, f.sys, cd, pd, onset)
	online, err := oa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, online) {
		t.Errorf("online differs from batch:\nbatch:  %+v\nonline: %+v", batch, online)
	}
	if !online.Controller.Detected {
		t.Fatal("post-onset event not detected")
	}
	if online.Controller.DetectionIndex < onset {
		t.Errorf("detection index %d before onset %d", online.Controller.DetectionIndex, onset)
	}
	if fa := oa.FirstAlarmIndex(); fa < onset {
		t.Errorf("first alarm index %d before onset %d", fa, onset)
	}
}

// TestOnlineStepSemantics checks the live-protocol contract: alarms are
// delivered exactly once on the latching step, Settled goes (and stays)
// true once the evidence is complete, and the analyzer is sealed by
// Finish.
func TestOnlineStepSemantics(t *testing.T) {
	f := newSynthFixture(t, 214)
	shift := map[int]float64{te.XmeasAFeed: -12}
	cd, pd := f.viewsWithShift(t, 100, 60, shift, shift)
	oa, err := f.sys.NewOnlineAnalyzer(100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var ctrlAlarms, procAlarms int
	settledAt := -1
	for i := 0; i < cd.Rows(); i++ {
		res, err := oa.Push(cd.RowView(i), pd.RowView(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Index != i {
			t.Fatalf("step index %d, want %d", res.Index, i)
		}
		if res.Ctrl == nil || res.Proc == nil {
			t.Fatalf("missing point at step %d", i)
		}
		if res.CtrlAlarm != nil {
			ctrlAlarms++
			if res.CtrlAlarm.Index != i {
				t.Errorf("ctrl alarm index %d delivered at step %d", res.CtrlAlarm.Index, i)
			}
		}
		if res.ProcAlarm != nil {
			procAlarms++
		}
		if oa.Settled() && settledAt < 0 {
			settledAt = i
		}
		if settledAt >= 0 && !oa.Settled() {
			t.Fatalf("Settled flipped back at step %d", i)
		}
	}
	if ctrlAlarms != 1 || procAlarms != 1 {
		t.Errorf("alarm deliveries ctrl=%d proc=%d, want exactly 1 each", ctrlAlarms, procAlarms)
	}
	if !oa.Detected() || oa.FirstAlarmIndex() < 100 {
		t.Errorf("Detected=%v FirstAlarmIndex=%d", oa.Detected(), oa.FirstAlarmIndex())
	}
	if settledAt < 0 {
		t.Error("analyzer never settled despite detection in both views")
	}
	rep, err := oa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	again, err := oa.Finish()
	if err != nil || again != rep {
		t.Errorf("Finish not idempotent: %v %p %p", err, rep, again)
	}
	if _, err := oa.Push(cd.RowView(0), pd.RowView(0)); !errors.Is(err, ErrBadInput) {
		t.Errorf("push after Finish: want ErrBadInput, got %v", err)
	}
	// Diagnosis windows are exposed for cross-run pooling.
	cw, pw := oa.DiagnosisWindows()
	w := f.sys.Config().DiagnoseWindow
	if len(cw) != w || len(pw) != w {
		t.Errorf("diagnosis windows %d/%d rows, want %d", len(cw), len(pw), w)
	}
}

// TestOnlineValidation covers the analyzer's error paths.
func TestOnlineValidation(t *testing.T) {
	var unset System
	if _, err := unset.NewOnlineAnalyzer(0, time.Second); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("uncalibrated: want ErrNotCalibrated, got %v", err)
	}
	f := newSynthFixture(t, 215)
	oa, err := f.sys.NewOnlineAnalyzer(0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oa.Push([]float64{1, 2}, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("narrow row: want ErrBadInput, got %v", err)
	}
	if _, err := oa.Finish(); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty stream: want ErrBadInput, got %v", err)
	}
}

// TestBatchWrapperStillValidates pins the wrapper's own input checks.
func TestBatchWrapperStillValidates(t *testing.T) {
	f := newSynthFixture(t, 216)
	cd, _ := f.viewsWithShift(t, 10, 0, nil, nil)
	empty, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.sys.AnalyzeViews(cd, empty, 0, time.Second); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty view: want ErrBadInput, got %v", err)
	}
}
