package historian

import (
	"errors"
	"testing"

	"pcsmon/internal/te"
)

func TestVarNames(t *testing.T) {
	names := VarNames()
	if len(names) != NumVars {
		t.Fatalf("got %d names, want %d", len(names), NumVars)
	}
	if names[0] != "XMEAS(1)" {
		t.Errorf("first name %q", names[0])
	}
	if names[te.NumXMEAS] != "XMV(1)" {
		t.Errorf("first XMV name %q", names[te.NumXMEAS])
	}
	if names[NumVars-1] != "XMV(12)" {
		t.Errorf("last name %q", names[NumVars-1])
	}
	if VarName(0) != "XMEAS(1)" || VarName(NumVars-1) != "XMV(12)" {
		t.Error("VarName mismatch")
	}
	if VarName(-1) == "" || VarName(999) == "" {
		t.Error("out-of-range VarName should render placeholder")
	}
}

func TestIndexHelpers(t *testing.T) {
	if IsXMV(0) || !IsXMV(te.NumXMEAS) || IsXMV(NumVars) {
		t.Error("IsXMV boundaries wrong")
	}
	if XMVIndex(te.NumXMEAS) != 0 || XMVIndex(te.NumXMEAS+3) != 3 || XMVIndex(5) != -1 {
		t.Error("XMVIndex wrong")
	}
	if XMEASIndex(5) != 5 || XMEASIndex(te.NumXMEAS) != -1 || XMEASIndex(-1) != -1 {
		t.Error("XMEASIndex wrong")
	}
}

func TestObservationAssembly(t *testing.T) {
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	xmeas[0] = 0.25
	xmv[2] = 24.6
	row, err := Observation(xmeas, xmv)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != NumVars {
		t.Fatalf("row len %d", len(row))
	}
	if row[0] != 0.25 || row[te.NumXMEAS+2] != 24.6 {
		t.Error("values misplaced")
	}
	if _, err := Observation(xmeas[:5], xmv); !errors.Is(err, ErrBadInput) {
		t.Errorf("short xmeas: want ErrBadInput, got %v", err)
	}
	if _, err := Observation(xmeas, xmv[:5]); !errors.Is(err, ErrBadInput) {
		t.Errorf("short xmv: want ErrBadInput, got %v", err)
	}
}

func TestRecorderDecimation(t *testing.T) {
	r, err := NewRecorder(3)
	if err != nil {
		t.Fatal(err)
	}
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 10; i++ {
		xmeas[0] = float64(i)
		if err := r.Record(xmeas, xmv); err != nil {
			t.Fatal(err)
		}
	}
	// Samples 0, 3, 6, 9 are kept.
	if r.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", r.Rows())
	}
	if r.Data().RowView(1)[0] != 3 {
		t.Errorf("second kept sample = %g, want 3", r.Data().RowView(1)[0])
	}
}

func TestRecorderDefaultKeepsAll(t *testing.T) {
	r, err := NewRecorder(0)
	if err != nil {
		t.Fatal(err)
	}
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 5; i++ {
		if err := r.Record(xmeas, xmv); err != nil {
			t.Fatal(err)
		}
	}
	if r.Rows() != 5 {
		t.Errorf("rows = %d, want 5", r.Rows())
	}
}

func TestTwoViewRecords(t *testing.T) {
	tv, err := NewTwoView(1)
	if err != nil {
		t.Fatal(err)
	}
	cm := make([]float64, te.NumXMEAS)
	cx := make([]float64, te.NumXMV)
	pm := make([]float64, te.NumXMEAS)
	px := make([]float64, te.NumXMV)
	cm[0], pm[0] = 1, 2 // forged vs real
	if err := tv.Record(cm, cx, pm, px); err != nil {
		t.Fatal(err)
	}
	if tv.Controller.Data().RowView(0)[0] != 1 {
		t.Error("controller view wrong")
	}
	if tv.Process.Data().RowView(0)[0] != 2 {
		t.Error("process view wrong")
	}
}
