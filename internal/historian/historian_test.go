package historian

import (
	"errors"
	"testing"

	"pcsmon/internal/te"
)

func TestVarNames(t *testing.T) {
	names := VarNames()
	if len(names) != NumVars {
		t.Fatalf("got %d names, want %d", len(names), NumVars)
	}
	if names[0] != "XMEAS(1)" {
		t.Errorf("first name %q", names[0])
	}
	if names[te.NumXMEAS] != "XMV(1)" {
		t.Errorf("first XMV name %q", names[te.NumXMEAS])
	}
	if names[NumVars-1] != "XMV(12)" {
		t.Errorf("last name %q", names[NumVars-1])
	}
	if VarName(0) != "XMEAS(1)" || VarName(NumVars-1) != "XMV(12)" {
		t.Error("VarName mismatch")
	}
	if VarName(-1) == "" || VarName(999) == "" {
		t.Error("out-of-range VarName should render placeholder")
	}
}

func TestIndexHelpers(t *testing.T) {
	if IsXMV(0) || !IsXMV(te.NumXMEAS) || IsXMV(NumVars) {
		t.Error("IsXMV boundaries wrong")
	}
	if XMVIndex(te.NumXMEAS) != 0 || XMVIndex(te.NumXMEAS+3) != 3 || XMVIndex(5) != -1 {
		t.Error("XMVIndex wrong")
	}
	if XMEASIndex(5) != 5 || XMEASIndex(te.NumXMEAS) != -1 || XMEASIndex(-1) != -1 {
		t.Error("XMEASIndex wrong")
	}
}

func TestObservationAssembly(t *testing.T) {
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	xmeas[0] = 0.25
	xmv[2] = 24.6
	row, err := Observation(xmeas, xmv)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != NumVars {
		t.Fatalf("row len %d", len(row))
	}
	if row[0] != 0.25 || row[te.NumXMEAS+2] != 24.6 {
		t.Error("values misplaced")
	}
	if _, err := Observation(xmeas[:5], xmv); !errors.Is(err, ErrBadInput) {
		t.Errorf("short xmeas: want ErrBadInput, got %v", err)
	}
	if _, err := Observation(xmeas, xmv[:5]); !errors.Is(err, ErrBadInput) {
		t.Errorf("short xmv: want ErrBadInput, got %v", err)
	}
}

func TestRecorderDecimation(t *testing.T) {
	r, err := NewRecorder(3)
	if err != nil {
		t.Fatal(err)
	}
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 10; i++ {
		xmeas[0] = float64(i)
		if err := r.Record(xmeas, xmv); err != nil {
			t.Fatal(err)
		}
	}
	// Samples 0, 3, 6, 9 are kept.
	if r.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", r.Rows())
	}
	if r.Data().RowView(1)[0] != 3 {
		t.Errorf("second kept sample = %g, want 3", r.Data().RowView(1)[0])
	}
}

func TestRecorderDefaultKeepsAll(t *testing.T) {
	r, err := NewRecorder(0)
	if err != nil {
		t.Fatal(err)
	}
	xmeas := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 5; i++ {
		if err := r.Record(xmeas, xmv); err != nil {
			t.Fatal(err)
		}
	}
	if r.Rows() != 5 {
		t.Errorf("rows = %d, want 5", r.Rows())
	}
}

func TestTwoViewTapSeesDecimatedPairs(t *testing.T) {
	tv, err := NewTwoView(3)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		idx        int
		ctrl, proc float64
	}
	var seen []pair
	tv.SetTap(func(idx int, ctrl, proc []float64) error {
		if len(ctrl) != NumVars || len(proc) != NumVars {
			t.Fatalf("tap rows %d/%d vars", len(ctrl), len(proc))
		}
		seen = append(seen, pair{idx, ctrl[0], proc[0]})
		return nil
	})
	cm := make([]float64, te.NumXMEAS)
	pm := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 10; i++ {
		cm[0] = float64(i)
		pm[0] = float64(i) + 100
		if err := tv.Record(cm, xmv, pm, xmv); err != nil {
			t.Fatal(err)
		}
	}
	// Samples 0, 3, 6, 9 are retained and tapped, with contiguous indices.
	if len(seen) != 4 {
		t.Fatalf("tap saw %d pairs, want 4", len(seen))
	}
	for i, p := range seen {
		if p.idx != i {
			t.Errorf("tap index %d, want %d", p.idx, i)
		}
		if p.ctrl != float64(3*i) || p.proc != float64(3*i)+100 {
			t.Errorf("tap pair %d = (%g, %g), want (%g, %g)", i, p.ctrl, p.proc, float64(3*i), float64(3*i)+100)
		}
	}
}

func TestTwoViewNoRetainStreamsWithoutStorage(t *testing.T) {
	tv, err := NewTwoView(1)
	if err != nil {
		t.Fatal(err)
	}
	tv.SetRetain(false)
	taps := 0
	tv.SetTap(func(idx int, ctrl, proc []float64) error {
		taps++
		return nil
	})
	cm := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	for i := 0; i < 7; i++ {
		if err := tv.Record(cm, xmv, cm, xmv); err != nil {
			t.Fatal(err)
		}
	}
	if taps != 7 {
		t.Errorf("tap saw %d samples, want 7", taps)
	}
	if tv.Controller.Rows() != 0 || tv.Process.Rows() != 0 {
		t.Errorf("no-retain mode stored %d/%d rows", tv.Controller.Rows(), tv.Process.Rows())
	}
}

func TestTwoViewTapErrorPropagates(t *testing.T) {
	tv, err := NewTwoView(1)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	tv.SetTap(func(idx int, ctrl, proc []float64) error {
		if idx == 2 {
			return sentinel
		}
		return nil
	})
	cm := make([]float64, te.NumXMEAS)
	xmv := make([]float64, te.NumXMV)
	var got error
	for i := 0; i < 5 && got == nil; i++ {
		got = tv.Record(cm, xmv, cm, xmv)
	}
	if !errors.Is(got, sentinel) {
		t.Errorf("tap error not propagated: %v", got)
	}
}

func TestTwoViewRecords(t *testing.T) {
	tv, err := NewTwoView(1)
	if err != nil {
		t.Fatal(err)
	}
	cm := make([]float64, te.NumXMEAS)
	cx := make([]float64, te.NumXMV)
	pm := make([]float64, te.NumXMEAS)
	px := make([]float64, te.NumXMV)
	cm[0], pm[0] = 1, 2 // forged vs real
	if err := tv.Record(cm, cx, pm, px); err != nil {
		t.Fatal(err)
	}
	if tv.Controller.Data().RowView(0)[0] != 1 {
		t.Error("controller view wrong")
	}
	if tv.Process.Data().RowView(0)[0] != 2 {
		t.Error("process view wrong")
	}
}
