// Package historian records the two views of plant data the paper's
// diagnosis compares:
//
//   - the controller view — the XMEAS values the controllers received and
//     the XMV values they sent (forgeable by a MitM), and
//   - the process view — the XMEAS values the sensors actually produced
//     and the XMV values the actuators actually received.
//
// In an attack-free run the two views are identical; under an integrity or
// DoS attack they diverge, and that divergence is what localizes the
// attacked channel.
//
// Observations are the 53-variable vector [XMEAS(1..41), XMV(1..12)],
// sampled every recording interval.
package historian

import (
	"errors"
	"fmt"

	"pcsmon/internal/dataset"
	"pcsmon/internal/te"
)

// Package-level sentinel errors.
var (
	// ErrBadInput is returned for malformed samples.
	ErrBadInput = errors.New("historian: invalid input")
)

// NumVars is the width of a recorded observation: 41 XMEAS + 12 XMV.
const NumVars = te.NumXMEAS + te.NumXMV

// VarNames returns the 53 canonical variable names, XMEAS(1..41) then
// XMV(1..12).
func VarNames() []string {
	names := make([]string, 0, NumVars)
	names = append(names, te.XMEASNames[:]...)
	names = append(names, te.XMVNames[:]...)
	return names
}

// VarName returns the canonical name of observation column j.
func VarName(j int) string {
	names := VarNames()
	if j < 0 || j >= len(names) {
		return fmt.Sprintf("var(%d)", j)
	}
	return names[j]
}

// IsXMV reports whether observation column j is a manipulated variable.
func IsXMV(j int) bool { return j >= te.NumXMEAS && j < NumVars }

// XMVIndex returns the 0-based XMV index of observation column j, or -1.
func XMVIndex(j int) int {
	if !IsXMV(j) {
		return -1
	}
	return j - te.NumXMEAS
}

// XMEASIndex returns the 0-based XMEAS index of observation column j, or
// -1.
func XMEASIndex(j int) int {
	if j < 0 || j >= te.NumXMEAS {
		return -1
	}
	return j
}

// Observation assembles the 53-variable observation vector from an XMEAS
// block and an XMV block.
func Observation(xmeas, xmv []float64) ([]float64, error) {
	row := make([]float64, NumVars)
	if err := assembleInto(row, xmeas, xmv); err != nil {
		return nil, err
	}
	return row, nil
}

// assembleInto validates the blocks and writes the observation layout
// [XMEAS(1..41), XMV(1..12)] into dst (len NumVars) — the single source of
// truth for the row format, shared by Observation and the recorders.
func assembleInto(dst, xmeas, xmv []float64) error {
	if len(xmeas) != te.NumXMEAS {
		return fmt.Errorf("historian: xmeas len %d != %d: %w", len(xmeas), te.NumXMEAS, ErrBadInput)
	}
	if len(xmv) != te.NumXMV {
		return fmt.Errorf("historian: xmv len %d != %d: %w", len(xmv), te.NumXMV, ErrBadInput)
	}
	copy(dst, xmeas)
	copy(dst[te.NumXMEAS:], xmv)
	return nil
}

// Recorder accumulates observations of one view, optionally downsampling
// (keep one of every Decimate samples).
type Recorder struct {
	data     *dataset.Dataset
	decimate int
	seen     int
	retain   bool
	scratch  []float64
}

// NewRecorder returns a recorder keeping one of every decimate samples
// (decimate ≤ 1 keeps everything).
func NewRecorder(decimate int) (*Recorder, error) {
	if decimate < 1 {
		decimate = 1
	}
	d, err := dataset.New(VarNames())
	if err != nil {
		return nil, fmt.Errorf("historian: %w", err)
	}
	return &Recorder{
		data:     d,
		decimate: decimate,
		retain:   true,
		scratch:  make([]float64, NumVars),
	}, nil
}

// SetRetain toggles storage of observations in the dataset. With retention
// off the recorder becomes a pure streaming feed — rows are assembled into
// a reused scratch buffer for the tap and memory stays O(1) regardless of
// run length.
func (r *Recorder) SetRetain(keep bool) { r.retain = keep }

// Record stores one observation assembled from the given blocks, honouring
// the decimation setting.
func (r *Recorder) Record(xmeas, xmv []float64) error {
	_, err := r.record(xmeas, xmv)
	return err
}

// record assembles the observation into the scratch buffer and returns it,
// or nil when the sample is decimated out. The returned slice is reused on
// the next call.
func (r *Recorder) record(xmeas, xmv []float64) ([]float64, error) {
	r.seen++
	if (r.seen-1)%r.decimate != 0 {
		return nil, nil
	}
	if err := assembleInto(r.scratch, xmeas, xmv); err != nil {
		return nil, err
	}
	if r.retain {
		if err := r.data.Append(r.scratch); err != nil {
			return nil, err
		}
	}
	return r.scratch, nil
}

// Rows returns the number of retained observations.
func (r *Recorder) Rows() int { return r.data.Rows() }

// Data returns the underlying dataset (shared, not a copy — the recorder
// should not be used after handing its data to analysis).
func (r *Recorder) Data() *dataset.Dataset { return r.data }

// Tap observes one retained (post-decimation) paired observation as it is
// recorded: the streaming feed of the online monitoring path. The rows are
// reused buffers, valid only for the duration of the call — copy what must
// outlive it. An error returned by the tap aborts the recording step and
// propagates (wrapped) to the caller, which is how a streaming consumer
// halts a simulation early.
type Tap func(index int, ctrl, proc []float64) error

// TwoView couples the controller-view and process-view recorders of one
// run.
type TwoView struct {
	Controller *Recorder
	Process    *Recorder

	tap    Tap
	tapped int // retained pairs delivered to the tap
}

// NewTwoView builds both recorders with a shared decimation factor.
func NewTwoView(decimate int) (*TwoView, error) {
	c, err := NewRecorder(decimate)
	if err != nil {
		return nil, err
	}
	p, err := NewRecorder(decimate)
	if err != nil {
		return nil, err
	}
	return &TwoView{Controller: c, Process: p}, nil
}

// SetTap installs (or clears, with nil) the per-observation streaming tap.
func (tv *TwoView) SetTap(fn Tap) { tv.tap = fn }

// SetRetain toggles dataset storage on both recorders. Streaming consumers
// that only need the tap can switch retention off to keep memory O(1).
func (tv *TwoView) SetRetain(keep bool) {
	tv.Controller.SetRetain(keep)
	tv.Process.SetRetain(keep)
}

// Record stores one sample into both views.
//
//   - ctrlXMEAS: what the controller received (possibly forged)
//   - ctrlXMV:   what the controller sent
//   - procXMEAS: what the sensors actually measured
//   - procXMV:   what the actuators actually received (possibly forged)
//
// When a tap is installed it sees every retained pair in order.
func (tv *TwoView) Record(ctrlXMEAS, ctrlXMV, procXMEAS, procXMV []float64) error {
	crow, err := tv.Controller.record(ctrlXMEAS, ctrlXMV)
	if err != nil {
		return err
	}
	prow, err := tv.Process.record(procXMEAS, procXMV)
	if err != nil {
		return err
	}
	// Both recorders share the decimation cadence, so the rows are either
	// both retained or both decimated out.
	if crow != nil && prow != nil && tv.tap != nil {
		idx := tv.tapped
		tv.tapped++
		if err := tv.tap(idx, crow, prow); err != nil {
			return fmt.Errorf("historian: tap at observation %d: %w", idx, err)
		}
	}
	return nil
}
