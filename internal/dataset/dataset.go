// Package dataset provides the named-column observation container shared by
// the historian, the MSPC pipeline and the CSV tooling: an append-only
// N×M table with variable names, convertible to the mat.Matrix the models
// consume.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"pcsmon/internal/mat"
)

// Package-level sentinel errors.
var (
	// ErrBadInput is returned for malformed rows or headers.
	ErrBadInput = errors.New("dataset: invalid input")
	// ErrEmpty is returned when an operation needs observations.
	ErrEmpty = errors.New("dataset: empty dataset")
)

// Dataset is an append-only table of float64 observations with named
// columns.
type Dataset struct {
	names []string
	rows  [][]float64
}

// New returns an empty dataset with the given column names.
func New(names []string) (*Dataset, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no columns: %w", ErrBadInput)
	}
	return &Dataset{names: append([]string(nil), names...)}, nil
}

// Names returns a copy of the column names.
func (d *Dataset) Names() []string {
	return append([]string(nil), d.names...)
}

// Cols returns the number of columns.
func (d *Dataset) Cols() int { return len(d.names) }

// Rows returns the number of observations.
func (d *Dataset) Rows() int { return len(d.rows) }

// Append adds one observation. The row is copied.
func (d *Dataset) Append(row []float64) error {
	if len(row) != len(d.names) {
		return fmt.Errorf("dataset: row len %d != cols %d: %w", len(row), len(d.names), ErrBadInput)
	}
	d.rows = append(d.rows, append([]float64(nil), row...))
	return nil
}

// Row returns a copy of observation i. It panics when out of range, like a
// slice access.
func (d *Dataset) Row(i int) []float64 {
	return append([]float64(nil), d.rows[i]...)
}

// RowView returns observation i without copying; the caller must not
// mutate it.
func (d *Dataset) RowView(i int) []float64 { return d.rows[i] }

// Matrix converts the dataset to a dense matrix (copying the data).
func (d *Dataset) Matrix() (*mat.Matrix, error) {
	if len(d.rows) == 0 {
		return nil, ErrEmpty
	}
	return mat.FromRows(d.rows)
}

// Slice returns a new dataset containing rows [from, to).
func (d *Dataset) Slice(from, to int) (*Dataset, error) {
	if from < 0 || to > len(d.rows) || from > to {
		return nil, fmt.Errorf("dataset: slice [%d,%d) of %d rows: %w", from, to, len(d.rows), ErrBadInput)
	}
	out := &Dataset{names: d.names}
	out.rows = make([][]float64, 0, to-from)
	for i := from; i < to; i++ {
		out.rows = append(out.rows, append([]float64(nil), d.rows[i]...))
	}
	return out, nil
}

// Col returns a copy of the named column's values.
func (d *Dataset) Col(name string) ([]float64, error) {
	idx := -1
	for j, n := range d.names {
		if n == name {
			idx = j
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("dataset: unknown column %q: %w", name, ErrBadInput)
	}
	out := make([]float64, len(d.rows))
	for i, r := range d.rows {
		out[i] = r[idx]
	}
	return out, nil
}

// WriteCSV writes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.names); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(d.names))
	for _, row := range d.rows {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset written by WriteCSV (header + numeric rows).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	d, err := New(header)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d: %w", line, len(rec), len(header), ErrBadInput)
		}
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d %q: %w", line, j+1, s, ErrBadInput)
			}
			row[j] = v
		}
		if err := d.Append(row); err != nil {
			return nil, err
		}
	}
}
