package dataset

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no columns: want ErrBadInput, got %v", err)
	}
}

func TestAppendAndAccessors(t *testing.T) {
	d, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 2 || d.Cols() != 2 {
		t.Fatalf("dims %dx%d", d.Rows(), d.Cols())
	}
	if err := d.Append([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short row: want ErrBadInput, got %v", err)
	}
	row := d.Row(1)
	row[0] = 99
	if d.RowView(1)[0] != 3 {
		t.Error("Row returned aliasing slice")
	}
	col, err := d.Col("b")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Col(b) = %v", col)
	}
	if _, err := d.Col("zzz"); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown col: want ErrBadInput, got %v", err)
	}
}

func TestAppendCopiesRow(t *testing.T) {
	d, _ := New([]string{"a"})
	src := []float64{7}
	if err := d.Append(src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if d.RowView(0)[0] != 7 {
		t.Error("Append aliased caller slice")
	}
}

func TestNamesCopied(t *testing.T) {
	names := []string{"a", "b"}
	d, _ := New(names)
	names[0] = "zzz"
	if d.Names()[0] != "a" {
		t.Error("New aliased names slice")
	}
	got := d.Names()
	got[1] = "zzz"
	if d.Names()[1] != "b" {
		t.Error("Names returned aliasing slice")
	}
}

func TestMatrixConversion(t *testing.T) {
	d, _ := New([]string{"a", "b"})
	if _, err := d.Matrix(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: want ErrEmpty, got %v", err)
	}
	_ = d.Append([]float64{1, 2})
	_ = d.Append([]float64{3, 4})
	m, err := d.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 4 {
		t.Errorf("matrix(1,1) = %g", m.At(1, 1))
	}
}

func TestSlice(t *testing.T) {
	d, _ := New([]string{"a"})
	for i := 0; i < 10; i++ {
		_ = d.Append([]float64{float64(i)})
	}
	s, err := d.Slice(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 3 || s.RowView(0)[0] != 3 || s.RowView(2)[0] != 5 {
		t.Errorf("slice contents wrong")
	}
	// Slice is a copy.
	s.RowView(0)[0] = 99
	if d.RowView(3)[0] != 3 {
		t.Error("Slice aliased parent")
	}
	if _, err := d.Slice(6, 3); !errors.Is(err, ErrBadInput) {
		t.Errorf("inverted: want ErrBadInput, got %v", err)
	}
	if _, err := d.Slice(0, 99); !errors.Is(err, ErrBadInput) {
		t.Errorf("overflow: want ErrBadInput, got %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, _ := New([]string{"x", "y", "z"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		_ = d.Append([]float64{rng.NormFloat64() * 1e6, rng.Float64(), float64(i)})
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != d.Rows() || back.Cols() != d.Cols() {
		t.Fatalf("dims %dx%d vs %dx%d", back.Rows(), back.Cols(), d.Rows(), d.Cols())
	}
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if d.RowView(i)[j] != back.RowView(i)[j] {
				t.Fatalf("(%d,%d): %g vs %g", i, j, d.RowView(i)[j], back.RowView(i)[j])
			}
		}
	}
	if back.Names()[2] != "z" {
		t.Error("names lost in round trip")
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(5)
		names := make([]string, cols)
		for j := range names {
			names[j] = string(rune('a' + j))
		}
		d, err := New(names)
		if err != nil {
			return false
		}
		rows := rng.Intn(30)
		for i := 0; i < rows; i++ {
			row := make([]float64, cols)
			for j := range row {
				row[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
			}
			if err := d.Append(row); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Rows() != rows {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if d.RowView(i)[j] != back.RowView(i)[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad number: want ErrBadInput, got %v", err)
	}
	// Header-only file is a valid empty dataset.
	d, err := ReadCSV(strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 0 || d.Cols() != 2 {
		t.Errorf("header-only: %dx%d", d.Rows(), d.Cols())
	}
}
