package pairing

import (
	"sync"
	"testing"
	"time"

	"pcsmon/internal/fieldbus"
)

// TestStressConcurrentOffers hammers one correlator from many producer
// goroutines (the fieldbus server's per-connection layout) with skewed,
// occasionally dropped frame streams, while another goroutine ticks the
// age horizon and polls stats. Run with -race. Invariants: per-unit
// emission order is strictly increasing, and frame conservation holds at
// the end.
func TestStressConcurrentOffers(t *testing.T) {
	const (
		producers    = 8
		unitsPerProd = 4
		obsPerUnit   = 400
	)
	lastSeq := map[uint8]int64{}
	sink := func(ev Event) error {
		// The sink runs under the correlator lock: plain map access is the
		// point (the race detector would flag a locking regression).
		switch ev.Outcome {
		case Paired, OrphanSensor, OrphanActuator:
			last, ok := lastSeq[ev.Unit]
			if ok && int64(ev.Seq) <= last {
				t.Errorf("unit %d emitted seq %d after %d", ev.Unit, ev.Seq, last)
			}
			lastSeq[ev.Unit] = int64(ev.Seq)
		}
		return nil
	}
	c, err := NewCorrelator(Config{Cols: 8, Window: 32, MaxAge: 50 * time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := c.Tick(time.Now()); err != nil {
					t.Errorf("tick: %v", err)
					return
				}
				_ = c.Stats()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			row := make([]float64, 8)
			for i := 0; i < obsPerUnit; i++ {
				for u := 0; u < unitsPerProd; u++ {
					unit := uint8(p*unitsPerProd + u)
					row[0] = float64(i)
					if err := c.Offer(fieldbus.FrameSensor, unit, uint64(i), row); err != nil {
						t.Errorf("offer: %v", err)
						return
					}
					// Drop every 17th actuator frame, and skew the rest by
					// a few sequence numbers.
					if (i+u)%17 == 0 {
						continue
					}
					lag := (p + u) % 5
					if i >= lag {
						if err := c.Offer(fieldbus.FrameActuator, unit, uint64(i-lag), row); err != nil {
							t.Errorf("offer: %v", err)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	ticker.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Units != producers*unitsPerProd {
		t.Errorf("saw %d units, want %d", st.Units, producers*unitsPerProd)
	}
	if sum := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers; st.Frames != sum {
		t.Errorf("conservation violated: frames=%d sum=%d (%+v)", st.Frames, sum, st)
	}
	if st.Paired == 0 || st.OrphanSensors == 0 {
		t.Errorf("stress produced a degenerate mix: %+v", st)
	}
}
