package pairing

import (
	"fmt"
	"math/rand"
	"testing"

	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
)

// BenchmarkPairingThroughput measures frame-correlation throughput at
// fleet scale: U units, obsPerUnit observations each (two 53-var frames
// per observation), with reorder injection — frames are shuffled inside
// window-sized bursts, so roughly half of all pairings complete out of
// order. The benchmark asserts the protocol invariant that every
// observation is recovered as a full pair: reordering inside the window
// must never cost an observation.
func BenchmarkPairingThroughput(b *testing.B) {
	for _, units := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("units-%d", units), func(b *testing.B) {
			const (
				obsPerUnit = 200
				window     = 32
				burst      = 16 // reorder radius in frames (< window observations)
			)
			type fr struct {
				typ  fieldbus.FrameType
				unit uint8
				seq  uint64
			}
			// Schedule: round-robin units, both frames per observation,
			// then shuffle within bursts (deterministic seed).
			frames := make([]fr, 0, 2*units*obsPerUnit)
			for o := 0; o < obsPerUnit; o++ {
				for u := 0; u < units; u++ {
					frames = append(frames,
						fr{fieldbus.FrameSensor, uint8(u), uint64(o)},
						fr{fieldbus.FrameActuator, uint8(u), uint64(o)})
				}
			}
			rng := rand.New(rand.NewSource(42))
			for start := 0; start < len(frames); start += burst {
				end := start + burst
				if end > len(frames) {
					end = len(frames)
				}
				sub := frames[start:end]
				rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
			}
			row := make([]float64, historian.NumVars)
			for j := range row {
				row[j] = float64(j)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var scored uint64
				sink := func(ev Event) error {
					switch ev.Outcome {
					case Paired, OrphanSensor, OrphanActuator:
						scored++
					}
					return nil
				}
				c, err := NewCorrelator(Config{Cols: historian.NumVars, Window: window}, sink)
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range frames {
					if err := c.Offer(f.typ, f.unit, f.seq, row); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
				if want := uint64(units * obsPerUnit); scored != want {
					b.Fatalf("scored %d observations, want %d", scored, want)
				}
				if st := c.Stats(); st.Paired != uint64(units*obsPerUnit) {
					b.Fatalf("reordering cost pairings: %+v", st)
				}
			}
			obs := float64(units * obsPerUnit)
			b.ReportMetric(obs*float64(b.N)/b.Elapsed().Seconds(), "obs/sec")
			b.ReportMetric(2*obs*float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}
