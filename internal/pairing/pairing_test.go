package pairing

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"pcsmon/internal/fieldbus"
)

const testCols = 4

// row builds a distinguishable test row: value v in every column.
func row(v float64) []float64 {
	r := make([]float64, testCols)
	for j := range r {
		r[j] = v
	}
	return r
}

// collector is a sink that records every event with copied rows.
type collector struct {
	events []Event
}

func (c *collector) sink(ev Event) error {
	cp := ev
	cp.Ctrl = append([]float64(nil), ev.Ctrl...)
	cp.Proc = append([]float64(nil), ev.Proc...)
	c.events = append(c.events, cp)
	return nil
}

// scoreable filters the collected events down to observation outcomes.
func (c *collector) scoreable() []Event {
	var out []Event
	for _, ev := range c.events {
		switch ev.Outcome {
		case Paired, OrphanSensor, OrphanActuator:
			out = append(out, ev)
		}
	}
	return out
}

func newTestCorrelator(t *testing.T, cfg Config) (*Correlator, *collector) {
	t.Helper()
	col := &collector{}
	if cfg.Cols == 0 {
		cfg.Cols = testCols
	}
	c, err := NewCorrelator(cfg, col.sink)
	if err != nil {
		t.Fatal(err)
	}
	return c, col
}

func offer(t *testing.T, c *Correlator, typ fieldbus.FrameType, unit uint8, seq uint64, v float64) {
	t.Helper()
	if err := c.Offer(typ, unit, seq, row(v)); err != nil {
		t.Fatalf("offer %v unit %d seq %d: %v", typ, unit, seq, err)
	}
}

func TestInOrderPairing(t *testing.T) {
	c, col := newTestCorrelator(t, Config{})
	for seq := uint64(1); seq <= 5; seq++ {
		offer(t, c, fieldbus.FrameSensor, 0, seq, float64(seq))
		offer(t, c, fieldbus.FrameActuator, 0, seq, float64(seq)+100)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 5 {
		t.Fatalf("got %d observations, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Outcome != Paired {
			t.Errorf("obs %d: outcome %v, want paired", i, ev.Outcome)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("obs %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Ctrl[0] != float64(i+1) || ev.Proc[0] != float64(i+1)+100 {
			t.Errorf("obs %d: rows ctrl=%g proc=%g", i, ev.Ctrl[0], ev.Proc[0])
		}
	}
	st := c.Stats()
	if st.Paired != 5 || st.Frames != 10 || st.PendingFrames != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestReorderWithinWindow: arbitrary arrival order inside the window must
// still emit strictly in sequence order, all paired.
func TestReorderWithinWindow(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 16})
	const n = 12
	type fr struct {
		typ fieldbus.FrameType
		seq uint64
	}
	var frames []fr
	for seq := uint64(0); seq < n; seq++ {
		frames = append(frames, fr{fieldbus.FrameSensor, seq}, fr{fieldbus.FrameActuator, seq})
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	for _, f := range frames {
		offer(t, c, f.typ, 3, f.seq, float64(f.seq))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != n {
		t.Fatalf("got %d observations, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Outcome != Paired {
			t.Errorf("obs %d: seq %d outcome %v", i, ev.Seq, ev.Outcome)
		}
	}
}

// TestInterleavedUnits: units are correlated independently; one unit's
// reordering does not disturb another's stream.
func TestInterleavedUnits(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 8})
	for seq := uint64(0); seq < 6; seq++ {
		for _, unit := range []uint8{1, 2, 7} {
			// Unit 2's actuator frames arrive one seq late (skewed).
			offer(t, c, fieldbus.FrameSensor, unit, seq, float64(unit)*1000+float64(seq))
			if unit == 2 && seq > 0 {
				offer(t, c, fieldbus.FrameActuator, unit, seq-1, float64(unit)*1000+float64(seq-1))
			}
			if unit != 2 {
				offer(t, c, fieldbus.FrameActuator, unit, seq, float64(unit)*1000+float64(seq))
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	perUnit := map[uint8][]Event{}
	for _, ev := range col.scoreable() {
		perUnit[ev.Unit] = append(perUnit[ev.Unit], ev)
	}
	for _, unit := range []uint8{1, 2, 7} {
		evs := perUnit[unit]
		if len(evs) != 6 {
			t.Fatalf("unit %d: %d observations, want 6", unit, len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i) {
				t.Errorf("unit %d obs %d: seq %d", unit, i, ev.Seq)
			}
			if i < 5 && ev.Outcome != Paired {
				t.Errorf("unit %d obs %d: outcome %v", unit, i, ev.Outcome)
			}
			if ev.Ctrl[0] != float64(unit)*1000+float64(i) {
				t.Errorf("unit %d obs %d: row %g", unit, i, ev.Ctrl[0])
			}
		}
	}
	// Unit 2's final actuator frame never arrived: its last observation is
	// an orphan with the previous actuator row held.
	last := perUnit[2][5]
	if last.Outcome != OrphanSensor || !last.Held || last.View != fieldbus.FrameActuator {
		t.Errorf("unit 2 tail: %+v", last)
	}
	if last.Proc[0] != 2004 { // held from seq 4
		t.Errorf("unit 2 tail held row %g, want 2004", last.Proc[0])
	}
}

// TestDuplicatesDropped: replayed frames are counted and dropped; the
// emitted stream is unchanged.
func TestDuplicatesDropped(t *testing.T) {
	c, col := newTestCorrelator(t, Config{})
	for seq := uint64(0); seq < 4; seq++ {
		offer(t, c, fieldbus.FrameSensor, 0, seq, float64(seq))
		offer(t, c, fieldbus.FrameSensor, 0, seq, float64(seq)+999) // duplicate: first wins
		offer(t, c, fieldbus.FrameActuator, 0, seq, float64(seq))
		offer(t, c, fieldbus.FrameActuator, 0, seq, float64(seq)+999)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 4 {
		t.Fatalf("got %d observations, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Outcome != Paired || ev.Ctrl[0] != float64(i) || ev.Proc[0] != float64(i) {
			t.Errorf("obs %d: %+v", i, ev)
		}
	}
	st := c.Stats()
	if st.Duplicates+st.Stale != 8 {
		t.Errorf("dropped %d+%d frames, want 8 total", st.Duplicates, st.Stale)
	}
	if st.Frames != 16 || st.Paired != 4 {
		t.Errorf("stats %+v", st)
	}
}

// TestWindowOverflowFlushesOldest: a frame far ahead forces the oldest
// pending slots out as orphans and the skipped range out as one gap.
func TestWindowOverflowFlushesOldest(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 4})
	offer(t, c, fieldbus.FrameSensor, 0, 0, 0) // pending, never paired
	offer(t, c, fieldbus.FrameSensor, 0, 10, 10)
	// Window is [7,11) now: seq 0 must have been flushed as an orphan and
	// seqs 1..6 as a gap.
	var got []string
	for _, ev := range col.events {
		got = append(got, fmt.Sprintf("%v@%d/%d", ev.Outcome, ev.Seq, ev.Span))
	}
	want := []string{"orphan-sensor@0/0", "gap@1/6"}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %s, want %s", i, got[i], want[i])
		}
	}
	st := c.Stats()
	if st.GapSeqs != 6 || st.OrphanSensors != 1 || st.PendingSteps != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestHoldLastValueSynthesis: after a pairing, orphans of the missing view
// carry the held mate row — and before any pairing they mirror.
func TestHoldLastValueSynthesis(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 2})
	// Seq 0: sensor only, actuator never seen -> mirror.
	offer(t, c, fieldbus.FrameSensor, 0, 0, 1)
	// Seq 1: full pair -> establishes hold-last state.
	offer(t, c, fieldbus.FrameSensor, 0, 1, 2)
	offer(t, c, fieldbus.FrameActuator, 0, 1, 102)
	// Seqs 2,3: sensor only -> actuator view held at 102.
	offer(t, c, fieldbus.FrameSensor, 0, 2, 3)
	offer(t, c, fieldbus.FrameSensor, 0, 3, 4)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 4 {
		t.Fatalf("got %d observations, want 4", len(evs))
	}
	if evs[0].Outcome != OrphanSensor || evs[0].Held || evs[0].Proc[0] != 1 {
		t.Errorf("mirror orphan: %+v", evs[0])
	}
	if evs[1].Outcome != Paired {
		t.Errorf("pair: %+v", evs[1])
	}
	for i, ev := range evs[2:] {
		if ev.Outcome != OrphanSensor || !ev.Held || ev.Proc[0] != 102 || ev.Ctrl[0] != float64(i)+3 {
			t.Errorf("held orphan %d: %+v", i, ev)
		}
	}
}

// TestViewStalledOnBlackout: a systematic one-view blackout raises exactly
// one ViewStalled per episode, and a recovered view re-arms the detector.
func TestViewStalledOnBlackout(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 2, StallAfter: 3})
	seq := uint64(0)
	pair := func() {
		offer(t, c, fieldbus.FrameSensor, 0, seq, 1)
		offer(t, c, fieldbus.FrameActuator, 0, seq, 2)
		seq++
	}
	sensorOnly := func(n int) {
		for i := 0; i < n; i++ {
			offer(t, c, fieldbus.FrameSensor, 0, seq, 1)
			seq++
		}
		// Push the pending orphans out of the 2-deep window.
		offer(t, c, fieldbus.FrameSensor, 0, seq+1, 1)
		offer(t, c, fieldbus.FrameActuator, 0, seq+1, 2)
		seq += 2
	}
	pair()
	sensorOnly(5) // blackout #1: 5 held orphans -> one stall event
	pair()
	sensorOnly(4) // blackout #2 after recovery -> a second stall event
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var stalls []Event
	for _, ev := range col.events {
		if ev.Outcome == ViewStalled {
			stalls = append(stalls, ev)
		}
	}
	if len(stalls) != 2 {
		t.Fatalf("got %d stall events, want 2 (%v)", len(stalls), stalls)
	}
	for i, ev := range stalls {
		if ev.View != fieldbus.FrameActuator {
			t.Errorf("stall %d view %v, want actuator", i, ev.View)
		}
	}
	if st := c.Stats(); st.Stalls != 2 {
		t.Errorf("stats %+v", st)
	}
}

// TestTickAgeHorizon: slots past MaxAge are flushed by Tick, younger ones
// stay pending.
func TestTickAgeHorizon(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, col := newTestCorrelator(t, Config{Window: 8, MaxAge: time.Second, Clock: clock})
	offer(t, c, fieldbus.FrameSensor, 0, 0, 1)
	now = now.Add(700 * time.Millisecond)
	offer(t, c, fieldbus.FrameSensor, 0, 1, 2)
	if err := c.Tick(now); err != nil {
		t.Fatal(err)
	}
	if len(col.scoreable()) != 0 {
		t.Fatalf("premature flush: %v", col.events)
	}
	now = now.Add(400 * time.Millisecond) // seq 0 is now 1.1s old, seq 1 only 0.4s
	if err := c.Tick(now); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 1 || evs[0].Seq != 0 || evs[0].Outcome != OrphanSensor {
		t.Fatalf("after first horizon: %v", col.events)
	}
	now = now.Add(time.Hour)
	if err := c.Tick(now); err != nil {
		t.Fatal(err)
	}
	if evs := col.scoreable(); len(evs) != 2 || evs[1].Seq != 1 {
		t.Fatalf("after second horizon: %v", col.events)
	}
	if st := c.Stats(); st.PendingFrames != 0 || st.PendingSteps != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestTickSparesFreshHead: the age horizon gates on the slot the flush
// would actually emit — an expired newer-sequence slot parked behind a
// fresh head must NOT force the fresh head out as an orphan; it waits its
// in-order turn.
func TestTickSparesFreshHead(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	c, col := newTestCorrelator(t, Config{Window: 8, MaxAge: time.Second, Clock: clock})
	offer(t, c, fieldbus.FrameSensor, 0, 5, 5) // old slot, ahead of the head
	now = now.Add(950 * time.Millisecond)
	offer(t, c, fieldbus.FrameSensor, 0, 0, 1) // fresh head (rebase down)
	now = now.Add(100 * time.Millisecond)      // seq 5 is 1.05s old, head only 0.1s
	if err := c.Tick(now); err != nil {
		t.Fatal(err)
	}
	if len(col.events) != 0 {
		t.Fatalf("fresh head force-flushed: %v", col.events)
	}
	offer(t, c, fieldbus.FrameActuator, 0, 0, 2) // mate arrives within MaxAge
	now = now.Add(900 * time.Millisecond)        // both head and slot 5 now overdue
	if err := c.Tick(now); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[0].Outcome != Paired {
		t.Fatalf("head not paired despite its mate arriving in time: %v", col.events)
	}
	if evs[1].Seq != 5 || evs[1].Outcome != OrphanSensor {
		t.Fatalf("parked slot not flushed at its turn: %v", col.events)
	}
}

// TestInterleavedOutliersNeverAdopt: forged far-off frames interleaved
// with genuine traffic must never accumulate into an epoch adoption —
// every accepted frame clears the candidate, whatever path it takes
// (including the window-slide path of a one-view feed).
func TestInterleavedOutliersNeverAdopt(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 4})
	// Sensor-only feed: steady state flows through the window-slide path.
	seq := uint64(0)
	for ; seq < 12; seq++ {
		offer(t, c, fieldbus.FrameSensor, 0, seq, float64(seq))
	}
	// Many forged frames in one far region, each separated by genuine
	// traffic of every flavour: placed slide-path frames, duplicates of a
	// pending frame, and near-horizon stale retransmits — all of which
	// must clear the quarantine candidate.
	for k := 0; k < 9; k++ {
		offer(t, c, fieldbus.FrameSensor, 0, 1_000_000+uint64(k), -1)
		switch k % 3 {
		case 0:
			for j := 0; j < 3; j++ {
				offer(t, c, fieldbus.FrameSensor, 0, seq, float64(seq))
				seq++
			}
		case 1:
			offer(t, c, fieldbus.FrameSensor, 0, seq-1, -2) // duplicate of a pending frame
		case 2:
			offer(t, c, fieldbus.FrameSensor, 0, 0, -3) // stale retransmit
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Outliers != 9 {
		t.Errorf("outliers %d, want 9 (no adoption): %+v", st.Outliers, st)
	}
	if st.GapSeqs != 0 {
		t.Errorf("forged frames opened a gap: %+v", st)
	}
	for _, ev := range col.events {
		if ev.Outcome == EpochReset {
			t.Fatalf("interleaved outliers adopted an epoch: %+v", ev)
		}
		if (ev.Outcome == Paired || ev.Outcome == OrphanSensor) && ev.Seq >= 1_000_000 {
			t.Fatalf("forged seq scored: %+v", ev)
		}
	}
	if got := len(col.scoreable()); got != int(seq) {
		t.Errorf("scored %d genuine observations, want %d", got, seq)
	}
}

// TestStaleFramesDropped: frames below the reorder horizon are dropped
// with accounting, whatever their type.
func TestStaleFramesDropped(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 2})
	offer(t, c, fieldbus.FrameSensor, 0, 10, 1)
	offer(t, c, fieldbus.FrameActuator, 0, 10, 2)
	offer(t, c, fieldbus.FrameSensor, 0, 3, 9)    // too far below the window to rebase
	offer(t, c, fieldbus.FrameActuator, 0, 10, 9) // redundant copy of a pending half
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(col.scoreable()); n != 1 {
		t.Fatalf("%d observations, want 1", n)
	}
	if st := c.Stats(); st.Stale != 1 || st.Duplicates != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestAccountingInvariant: the frame conservation equation holds at every
// point of a messy interleaved run.
func TestAccountingInvariant(t *testing.T) {
	c, _ := newTestCorrelator(t, Config{Window: 4})
	rng := rand.New(rand.NewSource(17))
	check := func() {
		st := c.Stats()
		sum := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers + st.PendingFrames
		if st.Frames != sum {
			t.Fatalf("conservation violated: frames=%d sum=%d (%+v)", st.Frames, sum, st)
		}
	}
	for i := 0; i < 2000; i++ {
		typ := fieldbus.FrameSensor
		if rng.Intn(2) == 0 {
			typ = fieldbus.FrameActuator
		}
		unit := uint8(rng.Intn(3))
		seq := uint64(i/6) + uint64(rng.Intn(5))
		offer(t, c, typ, unit, seq, float64(i))
		if i%97 == 0 {
			check()
		}
	}
	check()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PendingFrames != 0 || st.PendingSteps != 0 {
		t.Errorf("pending after close: %+v", st)
	}
	check2 := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers
	if st.Frames != check2 {
		t.Errorf("conservation after close: frames=%d sum=%d", st.Frames, check2)
	}
}

// TestSeqJumpQuarantine: one corrupted/forged far-future sequence number
// must not blind the unit — it is dropped as an outlier and the genuine
// stream keeps scoring — while a sustained run of frames in a new region
// (collector restart, long outage) is adopted as a new epoch.
func TestSeqJumpQuarantine(t *testing.T) {
	c, col := newTestCorrelator(t, Config{Window: 4})
	pair := func(seq uint64, v float64) {
		offer(t, c, fieldbus.FrameSensor, 0, seq, v)
		offer(t, c, fieldbus.FrameActuator, 0, seq, v)
	}
	for seq := uint64(0); seq < 8; seq++ {
		pair(seq, float64(seq))
	}
	// The poisoned frame: a single forged far-future sequence number.
	offer(t, c, fieldbus.FrameSensor, 0, 1<<60, -1)
	// The genuine stream continues and must still be scored.
	for seq := uint64(8); seq < 16; seq++ {
		pair(seq, float64(seq))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 16 {
		t.Fatalf("scored %d observations after the poison frame, want 16", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Outcome != Paired {
			t.Errorf("obs %d: seq %d outcome %v", i, ev.Seq, ev.Outcome)
		}
	}
	st := c.Stats()
	if st.Outliers != 1 {
		t.Errorf("stats %+v", st)
	}

	// A sustained jump is a genuine epoch: after epochFrames in-region
	// frames the window re-anchors and scoring resumes there.
	const epoch = uint64(1 << 40)
	pair(epoch, 100)
	offer(t, c, fieldbus.FrameSensor, 0, epoch+1, 101)
	pair(epoch+2, 102)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs = col.scoreable()
	tail := evs[16:]
	if len(tail) < 2 {
		t.Fatalf("epoch frames not scored: %d tail observations", len(tail))
	}
	for _, ev := range tail {
		if ev.Seq < epoch {
			t.Errorf("post-epoch observation at seq %d", ev.Seq)
		}
	}
	var gapSpans uint64
	for _, ev := range col.events {
		if ev.Outcome == GapDetected {
			gapSpans += ev.Span
		}
	}
	if gapSpans == 0 {
		t.Error("epoch adoption recorded no gap")
	}

	// A collector restart: the counter drops back to zero. The first two
	// frames are quarantined, the third confirms the backward epoch, and
	// scoring resumes from the new numbering with an EpochReset event.
	before := len(col.scoreable())
	pair(0, 200)
	pair(1, 201)
	pair(2, 202)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	resets := 0
	for _, ev := range col.events {
		if ev.Outcome == EpochReset {
			resets++
		}
	}
	if resets != 1 {
		t.Fatalf("%d epoch resets, want 1", resets)
	}
	restarted := col.scoreable()[before:]
	if len(restarted) == 0 {
		t.Fatal("no observations scored after the restart")
	}
	for _, ev := range restarted {
		if ev.Seq > 2 {
			t.Errorf("post-restart observation at stale seq %d", ev.Seq)
		}
	}
}

// TestSinkErrorPropagates: a failing sink aborts the offer and surfaces.
func TestSinkErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	c, err := NewCorrelator(Config{Cols: testCols}, func(Event) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Offer(fieldbus.FrameSensor, 0, 0, row(1)); err != nil {
		t.Fatalf("pending offer must not hit the sink: %v", err)
	}
	if err := c.Offer(fieldbus.FrameActuator, 0, 0, row(2)); err != nil {
		t.Fatalf("pending pair must not hit the sink before the first forced emission: %v", err)
	}
	if err := c.Flush(); !errors.Is(err, boom) {
		t.Fatalf("want sink error from the flush, got %v", err)
	}
}

// TestConfigAndFrameValidation: bad parameters and malformed frames are
// rejected with the package sentinels.
func TestConfigAndFrameValidation(t *testing.T) {
	sink := func(Event) error { return nil }
	for _, cfg := range []Config{
		{Cols: 0},
		{Cols: -1},
		{Cols: fieldbus.MaxValues + 1},
		{Cols: 4, Window: -1},
		{Cols: 4, MaxAge: -time.Second},
	} {
		if _, err := NewCorrelator(cfg, sink); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%+v: want ErrBadConfig, got %v", cfg, err)
		}
	}
	if _, err := NewCorrelator(Config{Cols: 4}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil sink: want ErrBadConfig, got %v", err)
	}
	c, _ := NewCorrelator(Config{Cols: 4}, sink)
	if err := c.Offer(fieldbus.FrameType(9), 0, 0, row(1)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad type: %v", err)
	}
	if err := c.Offer(fieldbus.FrameSensor, 0, 0, []float64{1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad width: %v", err)
	}
	if err := c.OfferFrame(nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("nil frame: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Offer(fieldbus.FrameSensor, 0, 0, row(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("offer after close: %v", err)
	}
	if err := c.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestOfferFrameRoundTrip: a frame that went through the wire codec pairs
// exactly like direct values.
func TestOfferFrameRoundTrip(t *testing.T) {
	c, col := newTestCorrelator(t, Config{})
	sf := &fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: 5, Seq: 9, Values: row(3)}
	af := &fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: 5, Seq: 9, Values: row(4)}
	for _, f := range []*fieldbus.Frame{sf, af} {
		data, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := fieldbus.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.OfferFrame(decoded); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := col.scoreable()
	if len(evs) != 1 || evs[0].Outcome != Paired || evs[0].Unit != 5 || evs[0].Seq != 9 {
		t.Fatalf("events %v", col.events)
	}
	if evs[0].Ctrl[0] != 3 || evs[0].Proc[0] != 4 {
		t.Errorf("rows %v %v", evs[0].Ctrl, evs[0].Proc)
	}
}

// TestNoAllocationSteadyState: once warm, pairing a frame allocates
// nothing.
func TestNoAllocationSteadyState(t *testing.T) {
	sink := func(Event) error { return nil }
	c, err := NewCorrelator(Config{Cols: testCols, Window: 8}, sink)
	if err != nil {
		t.Fatal(err)
	}
	sens, act := row(1), row(2)
	seq := uint64(0)
	// Warm the buffer pool and unit state.
	for ; seq < 32; seq++ {
		_ = c.Offer(fieldbus.FrameSensor, 0, seq, sens)
		_ = c.Offer(fieldbus.FrameActuator, 0, seq, act)
	}
	avg := testing.AllocsPerRun(200, func() {
		_ = c.Offer(fieldbus.FrameSensor, 0, seq, sens)
		_ = c.Offer(fieldbus.FrameActuator, 0, seq, act)
		seq++
	})
	if avg > 0 {
		t.Errorf("steady-state pairing allocates %.1f times per observation, want 0", avg)
	}
}

// TestLossRate: the loss figure counts exactly the frames the finalized
// sequence space implies but never received — orphan mates and gaps — and
// excludes pending slots and redundant (duplicate/stale) traffic.
func TestLossRate(t *testing.T) {
	c, _ := newTestCorrelator(t, Config{Window: 4})
	if got := c.Stats().LossRate(); got != 0 {
		t.Fatalf("empty correlator LossRate = %g, want 0", got)
	}
	// Three full pairs, the third's actuator duplicated.
	for seq := uint64(0); seq < 3; seq++ {
		offer(t, c, fieldbus.FrameSensor, 1, seq, 1)
		offer(t, c, fieldbus.FrameActuator, 1, seq, 2)
	}
	offer(t, c, fieldbus.FrameActuator, 1, 2, 2) // duplicate: redundant, not loss
	// Seq 3 loses its actuator mate; seqs 4-5 vanish entirely; seq 6 pairs.
	offer(t, c, fieldbus.FrameSensor, 1, 3, 1)
	offer(t, c, fieldbus.FrameSensor, 1, 6, 1)
	offer(t, c, fieldbus.FrameActuator, 1, 6, 2)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Emitted space: 4 paired + 1 orphan + 2 gap seqs = 14 expected frames,
	// 9 received (the duplicate doesn't count) -> 5/14 lost.
	if st.Paired != 4 || st.OrphanSensors != 1 || st.GapSeqs != 2 || st.Duplicates != 1 {
		t.Fatalf("unexpected accounting: %+v", st)
	}
	want := 5.0 / 14.0
	if got := st.LossRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LossRate = %g, want %g", got, want)
	}
}

// TestLossRateSingleView is the regression for the healthy-single-view
// bug: a sensor-only feed — a deployment with no actuator tap at all —
// used to score 50% loss, because every mirrored orphan was charged a
// phantom mate. Single-view operation is not loss; LossRate must be 0.
func TestLossRateSingleView(t *testing.T) {
	c, _ := newTestCorrelator(t, Config{Window: 4})
	for seq := uint64(0); seq < 20; seq++ {
		offer(t, c, fieldbus.FrameSensor, 1, seq, 1)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.OrphanSensors != 20 {
		t.Fatalf("unexpected accounting: %+v", st)
	}
	if got := st.LossRate(); got != 0 {
		t.Errorf("healthy sensor-only feed LossRate = %g, want 0", got)
	}
	if st.ExpectedFrames != 20 || st.MissingFrames != 0 {
		t.Errorf("expected/missing = %d/%d, want 20/0", st.ExpectedFrames, st.MissingFrames)
	}

	// A gap in a single-view feed IS loss — one frame per missing seq, not
	// two: seqs 20-21 vanish, 22 arrives.
	offer(t, c, fieldbus.FrameSensor, 1, 22, 1)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.GapSeqs != 2 {
		t.Fatalf("unexpected accounting: %+v", st)
	}
	want := 2.0 / 23.0 // 21 sensor frames expected + 2 gapped, 2 missing
	if got := st.LossRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("single-view LossRate with gap = %g, want %g", got, want)
	}
}

// TestLossRateViewAppears covers the transition: once the second view
// delivers even once, its absence from later observations is genuine loss.
func TestLossRateViewAppears(t *testing.T) {
	c, _ := newTestCorrelator(t, Config{Window: 4})
	// Two mirrored sensor-only observations, then the actuator tap comes
	// online for seq 2, then disappears again for 3-4.
	offer(t, c, fieldbus.FrameSensor, 1, 0, 1)
	offer(t, c, fieldbus.FrameSensor, 1, 1, 1)
	offer(t, c, fieldbus.FrameSensor, 1, 2, 1)
	offer(t, c, fieldbus.FrameActuator, 1, 2, 2)
	offer(t, c, fieldbus.FrameSensor, 1, 3, 1)
	offer(t, c, fieldbus.FrameSensor, 1, 4, 1)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Seqs 0-1: 1 expected each, 0 missing. Seq 2: 2 expected, 0 missing.
	// Seqs 3-4 (held): 2 expected each, 1 missing each.
	if st.ExpectedFrames != 8 || st.MissingFrames != 2 {
		t.Fatalf("expected/missing = %d/%d, want 8/2 (%+v)", st.ExpectedFrames, st.MissingFrames, st)
	}
	want := 2.0 / 8.0
	if got := st.LossRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LossRate = %g, want %g", got, want)
	}
}
