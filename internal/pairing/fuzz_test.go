package pairing

import (
	"encoding/binary"
	"testing"

	"pcsmon/internal/fieldbus"
)

// FuzzCorrelator drives the pairing state machine with arbitrary frame
// interleavings — types, units, wildly jumping sequence numbers,
// duplicates — decoded from the fuzzer's byte stream, and asserts the
// correlator's structural invariants:
//
//   - no panic, whatever the interleaving;
//   - frame conservation: every accepted frame is accounted as exactly one
//     of paired/orphan/duplicate/stale or still pending, and nothing stays
//     pending after Close;
//   - bounded memory: pending frames never exceed units x window x 2;
//   - per-unit emission order: scoreable outcomes carry strictly
//     increasing sequence numbers.
func FuzzCorrelator(f *testing.F) {
	// Seeds: in-order pairs, a duplicate flood, a seq jump, unit interleave.
	f.Add([]byte{0x00, 0x01, 0x10, 0x11, 0x20, 0x21})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x01, 0x01})
	f.Add([]byte{0x00, 0xF0, 0x01, 0xF1})
	f.Add([]byte{0x00, 0x41, 0x80, 0xC1, 0x10, 0x51})
	f.Add(binary.BigEndian.AppendUint64(nil, 1<<63))

	const window = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		lastSeq := map[uint8]uint64{}
		seenAny := map[uint8]bool{}
		sink := func(ev Event) error {
			switch ev.Outcome {
			case Paired, OrphanSensor, OrphanActuator:
				if seenAny[ev.Unit] && ev.Seq <= lastSeq[ev.Unit] {
					t.Fatalf("unit %d emitted seq %d after %d", ev.Unit, ev.Seq, lastSeq[ev.Unit])
				}
				lastSeq[ev.Unit], seenAny[ev.Unit] = ev.Seq, true
				if ev.Ctrl == nil || ev.Proc == nil {
					t.Fatalf("scoreable outcome %v without rows", ev.Outcome)
				}
			case GapDetected:
				if ev.Span == 0 {
					t.Fatal("gap with zero span")
				}
			case EpochReset:
				// Sequence numbering restarted: monotonicity begins anew.
				seenAny[ev.Unit] = false
			}
			return nil
		}
		c, err := NewCorrelator(Config{Cols: 3, Window: window}, sink)
		if err != nil {
			t.Fatal(err)
		}
		row := []float64{1, 2, 3}
		units := map[uint8]bool{}
		// Each byte is one frame: bit 0 selects the view, bits 1-2 the
		// unit, the rest a sequence delta; every 8th byte widens the jump
		// so the overflow/gap machinery is exercised.
		seq := map[uint8]uint64{}
		for i, b := range data {
			typ := fieldbus.FrameSensor
			if b&1 != 0 {
				typ = fieldbus.FrameActuator
			}
			unit := (b >> 1) & 3
			delta := uint64(b >> 3)
			if i%8 == 7 {
				delta *= uint64(b) * 31 // occasional far jump
			}
			if b&0x40 != 0 && seq[unit] > delta {
				seq[unit] -= delta // move backwards: late/stale frames
			} else {
				seq[unit] += delta
			}
			units[unit] = true
			if err := c.Offer(typ, unit, seq[unit], row); err != nil {
				t.Fatalf("offer %d: %v", i, err)
			}
			if i%13 == 0 {
				st := c.Stats()
				if sum := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers + st.PendingFrames; st.Frames != sum {
					t.Fatalf("conservation violated mid-run: frames=%d sum=%d (%+v)", st.Frames, sum, st)
				}
				if st.PendingFrames > uint64(len(units))*window*2 {
					t.Fatalf("unbounded memory: %d pending frames for %d units (%+v)", st.PendingFrames, len(units), st)
				}
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.PendingFrames != 0 || st.PendingSteps != 0 {
			t.Fatalf("pending after close: %+v", st)
		}
		if sum := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers; st.Frames != sum {
			t.Fatalf("conservation violated after close: frames=%d sum=%d (%+v)", st.Frames, sum, st)
		}
	})
}
