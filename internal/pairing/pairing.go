// Package pairing correlates live fieldbus frames into the paired two-view
// observations the paper's diagnosis needs. The monitor's central claim is
// that *disagreement between the controller view and the process view* is
// what separates intrusions from disturbances — so a live feed is only as
// good as its pairing: a sensor frame (the controller-view row, captured at
// the controller end of the wire) and an actuator frame (the process-view
// row, captured at the plant end) of the same (Unit, Seq) must be joined
// into one observation before the two-view analysis can run.
//
// A Correlator performs that join under real-network conditions: frames
// arrive out of order, duplicated, interleaved across units, late, or not
// at all. Per unit it keeps a bounded reorder window (configurable depth
// and age horizon) of pending sequence slots and emits outcomes strictly in
// sequence order:
//
//   - Paired: both views arrived — the full cross-view observation.
//   - OrphanSensor / OrphanActuator: one view's frame never showed up
//     inside the window. The missing row is synthesized by hold-last-value
//     from the unit's most recent delivery of that view, which is exactly
//     the signature the core analyzer's frozen/diverged channel machinery
//     classifies as a DoS — frame loss itself becomes evidence instead of
//     silently downgraded monitoring. Before the first delivery of the
//     missing view the present row is mirrored (plain single-view feed).
//   - GapDetected: a sequence range skipped entirely (neither frame).
//   - Duplicate / Stale: redundant or beyond-horizon frames, dropped with
//     accounting.
//   - ViewStalled: one view has produced only hold-last orphans for
//     StallAfter consecutive observations — the systematic one-view
//     blackout of the paper's DoS scenario, surfaced as a typed event.
//
// The hot path is O(1) amortized per frame and allocation-free: slot row
// buffers come from a free list and are recycled through the hold-last
// state by pointer swap, never by copy-and-allocate.
//
// A Correlator is safe for concurrent use; the sink is invoked under the
// correlator's lock, so outcomes of one unit are delivered in order.
package pairing

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pcsmon/internal/fieldbus"
)

// Package-level sentinel errors.
var (
	// ErrBadConfig is returned for invalid correlator parameters.
	ErrBadConfig = errors.New("pairing: invalid configuration")
	// ErrBadFrame is returned for frames the correlator cannot ingest.
	ErrBadFrame = errors.New("pairing: invalid frame")
	// ErrClosed is returned when offering to a closed correlator.
	ErrClosed = errors.New("pairing: correlator closed")
)

// Outcome classifies what the correlator concluded about one sequence slot
// (or, for Duplicate/Stale/ViewStalled, about one frame or view).
type Outcome uint8

// Outcomes.
const (
	// Paired: both views arrived; Ctrl and Proc are the genuine rows.
	Paired Outcome = iota + 1
	// OrphanSensor: the sensor (controller-view) frame arrived but its
	// actuator mate did not; Proc is synthesized.
	OrphanSensor
	// OrphanActuator: the actuator (process-view) frame arrived but its
	// sensor mate did not; Ctrl is synthesized.
	OrphanActuator
	// GapDetected: Span consecutive sequence numbers from Seq on were
	// skipped entirely — nothing to score, evidence of total frame loss.
	GapDetected
	// Duplicate: a frame for an already-filled slot half; dropped.
	Duplicate
	// Stale: a frame below the emission horizon (too late, or replayed);
	// dropped.
	Stale
	// Outlier: a frame whose sequence number jumped implausibly far from
	// the horizon (more than jumpFactor windows, in either direction);
	// quarantined so a single corrupted or forged frame cannot blind the
	// unit. epochFrames consecutive outliers in one window-sized region
	// are adopted as a genuine new sequence epoch instead.
	Outlier
	// EpochReset: the unit's sequence numbering restarted below the old
	// horizon (a collector restart) and the window re-anchored at
	// Event.Seq. Subsequent observations of the unit carry sequence
	// numbers from the new epoch.
	EpochReset
	// ViewStalled: the view named in Event.View has produced only
	// hold-last orphans for StallAfter consecutive observations.
	ViewStalled
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Paired:
		return "paired"
	case OrphanSensor:
		return "orphan-sensor"
	case OrphanActuator:
		return "orphan-actuator"
	case GapDetected:
		return "gap"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	case Outlier:
		return "seq-outlier"
	case EpochReset:
		return "epoch-reset"
	case ViewStalled:
		return "view-stalled"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Event is one correlation outcome. For Paired and the orphan outcomes,
// Ctrl and Proc carry the controller-view and process-view rows to score;
// they reference correlator-owned buffers that are reused after the sink
// returns — copy what must outlive the call (fleet.Pool.Push copies).
type Event struct {
	Unit uint8
	// Seq is the observation's sequence number (for GapDetected, the first
	// missing one).
	Seq     uint64
	Outcome Outcome
	// Ctrl is the controller-view row, Proc the process-view row. Nil for
	// non-scoreable outcomes (GapDetected, Duplicate, Stale, ViewStalled).
	Ctrl, Proc []float64
	// Held reports that the missing view's row was synthesized by
	// hold-last-value (false for mirrored rows before that view's first
	// delivery — a plain single-view feed).
	Held bool
	// View names the missing view of an orphan or the stalled view of a
	// ViewStalled event (zero otherwise).
	View fieldbus.FrameType
	// Span is the number of consecutive missing sequence numbers of a
	// GapDetected event (zero otherwise).
	Span uint64
}

// Sink consumes correlation outcomes. It is called under the correlator's
// lock: outcomes arrive in per-unit sequence order and must not re-enter
// the correlator. A sink error aborts the triggering operation and
// propagates to its caller.
type Sink func(Event) error

// Config parameterizes a Correlator.
type Config struct {
	// Cols is the expected row width of both views (required).
	Cols int
	// Window is the reorder depth in sequence numbers per unit (0 = 64).
	// A frame more than Window sequences ahead of the oldest pending slot
	// forces the oldest slots out as orphans/gaps.
	Window int
	// MaxAge is the age horizon: a Tick flushes slots whose first frame
	// arrived more than MaxAge ago (0 = no horizon; only window overflow,
	// Flush and Close evict).
	MaxAge time.Duration
	// StallAfter is the number of consecutive hold-last orphans of one
	// view before a ViewStalled event is emitted (0 = 8, < 0 disables).
	StallAfter int
	// Clock overrides the arrival timestamp source (tests). Nil uses
	// time.Now; it is only consulted when MaxAge > 0.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.StallAfter == 0 {
		c.StallAfter = 8
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Cols < 1 || c.Cols > fieldbus.MaxValues:
		return fmt.Errorf("pairing: cols %d: %w", c.Cols, ErrBadConfig)
	case c.Window < 0:
		return fmt.Errorf("pairing: window %d: %w", c.Window, ErrBadConfig)
	case c.MaxAge < 0:
		return fmt.Errorf("pairing: max age %v: %w", c.MaxAge, ErrBadConfig)
	}
	return nil
}

// Stats is a point-in-time snapshot of the correlator's accounting. The
// frame conservation invariant (checked by the fuzz harness) is
//
//	Frames == 2·Paired + OrphanSensors + OrphanActuators
//	          + Duplicates + Stale + Outliers + PendingFrames
//
// — every accepted frame is eventually part of exactly one outcome or
// still pending in a window.
type Stats struct {
	// Frames counts frames accepted by Offer (valid type and width).
	Frames uint64
	// Steps counts distinct (unit, seq) slots opened.
	Steps uint64
	// Paired counts fully paired observations (two frames each).
	Paired uint64
	// OrphanSensors/OrphanActuators count one-frame observations.
	OrphanSensors   uint64
	OrphanActuators uint64
	// GapEvents counts GapDetected emissions; GapSeqs the missing
	// sequence numbers they cover.
	GapEvents uint64
	GapSeqs   uint64
	// Duplicates, Stale and Outliers count dropped frames (Outliers:
	// quarantined implausible sequence jumps).
	Duplicates uint64
	Stale      uint64
	Outliers   uint64
	// PendingFrames/PendingSteps count frames and slots currently held in
	// reorder windows.
	PendingFrames uint64
	PendingSteps  uint64
	// Stalls counts ViewStalled events.
	Stalls uint64
	// Units counts units seen.
	Units int
	// ExpectedFrames counts the wire frames finalized observations *should*
	// have carried, judged per unit by which views have ever been delivered:
	// a unit whose actuator view has never been seen is a plain single-view
	// feed, so its observations expect one frame, not two. MissingFrames
	// counts the expected frames that never arrived — a held orphan's mate,
	// a gap's skipped frames. Maintained at emission time (pending slots
	// excluded; their mates may still show up).
	ExpectedFrames uint64
	MissingFrames  uint64
}

// LossRate reports the fraction of expected wire frames missing from
// finalized observations. Crucially, "expected" is per-unit view-aware: a
// healthy sensor-only feed — a unit whose second view has never existed —
// expects one frame per observation and therefore scores 0 loss, not the
// 50% the naive two-frames-per-seq arithmetic would report. Loss only
// accrues for frames there was concrete evidence to expect: the mate of a
// hold-last orphan (that view HAS delivered before), or a sequence gap
// (counted per view the unit has shown). Returns 0 before anything has
// been emitted.
//
// This is the per-transport loss figure a lossy feed (UDP, a flaky
// collector link) is judged by: duplicates and stale frames are redundant
// traffic, not loss, so they do not enter the ratio.
func (s Stats) LossRate() float64 {
	if s.ExpectedFrames == 0 {
		return 0
	}
	return float64(s.MissingFrames) / float64(s.ExpectedFrames)
}

// slot is one pending sequence number: up to one frame per view. A nil row
// means that view has not arrived.
type slot struct {
	sens, act []float64 // sensor = controller view, actuator = process view
	at        int64     // first-arrival timestamp (UnixNano), 0 when empty
}

func (s *slot) empty() bool { return s.sens == nil && s.act == nil }

// unitState is one unit's reorder window plus its hold-last-value memory.
type unitState struct {
	started bool
	emitted bool   // horizon has advanced; seqs below next are final
	next    uint64 // lowest unemitted sequence number
	base    int    // ring index of next
	ring    []slot
	pending int // frames currently buffered in the ring

	lastSens, lastAct []float64 // most recent delivered rows (hold-last)
	seenSens, seenAct bool

	heldSensRun, heldActRun int // consecutive hold-last orphans per view
	stalledSens, stalledAct bool

	// Epoch-jump quarantine: candidate region of implausibly-far-ahead
	// sequence numbers and how many consecutive frames landed in it.
	jumpLow, jumpHigh uint64
	jumpRun           int
}

// viewsKnown returns how many wire frames one sequence number of this unit
// is expected to carry: one per view that has ever been delivered. Before
// any delivery (a gap emitted ahead of the unit's first emission) it
// assumes the full two-view feed.
func (u *unitState) viewsKnown() uint64 {
	n := uint64(0)
	if u.seenSens {
		n++
	}
	if u.seenAct {
		n++
	}
	if n == 0 {
		return 2
	}
	return n
}

// Correlator joins sensor and actuator frames into paired two-view
// observations. Create with NewCorrelator.
type Correlator struct {
	cfg  Config
	sink Sink

	mu     sync.Mutex
	units  [256]*unitState
	nUnits int
	free   [][]float64 // row buffer free list (len = Cols each)
	closed bool

	stats Stats
	steps atomic.Uint64 // mirrors stats.Steps for lock-free readers
}

// NewCorrelator builds a correlator delivering outcomes to sink.
func NewCorrelator(cfg Config, sink Sink) (*Correlator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("pairing: nil sink: %w", ErrBadConfig)
	}
	return &Correlator{cfg: cfg.withDefaults(), sink: sink}, nil
}

// Offer ingests one frame: typ selects the view (FrameSensor carries the
// controller-view row, FrameActuator the process-view row), and the row is
// copied before Offer returns. Outcomes that become decidable — the slot
// pairing up, older slots forced out of the window — are delivered to the
// sink before Offer returns.
//
//pcslint:hotpath
func (c *Correlator) Offer(typ fieldbus.FrameType, unit uint8, seq uint64, row []float64) error {
	if typ != fieldbus.FrameSensor && typ != fieldbus.FrameActuator {
		return fmt.Errorf("pairing: frame type %d: %w", int(typ), ErrBadFrame)
	}
	if len(row) != c.cfg.Cols {
		return fmt.Errorf("pairing: row has %d values, want %d: %w", len(row), c.cfg.Cols, ErrBadFrame)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	u := c.unit(unit)
	if !u.started {
		u.started = true
		u.next = seq
	}
	c.stats.Frames++
	w := uint64(c.cfg.Window)
	// An implausibly far sequence jump — in either direction — is
	// quarantined rather than trusted: the sequence number is
	// attacker-observable wire data, and moving the horizon on a single
	// corrupted or forged frame would make every subsequent genuine frame
	// read as stale, one frame permanently blinding the unit. Only a
	// confirmed run of frames in one window-sized region moves the horizon
	// that far: forward (long outage) as a coalesced gap, backward (a
	// collector restarting its counter) as an epoch reset. The same
	// machinery recovers the stream if a forged run ever does win an
	// adoption: the genuine frames themselves form the next confirmed
	// region.
	switch {
	case seq < u.next && u.next-seq > w*jumpFactor:
		if adopted, err := c.quarantine(u, unit, typ, seq); !adopted || err != nil {
			return err
		}
	case seq < u.next:
		if !c.rebaseDown(u, seq) {
			// Near-horizon traffic, even when dropped: the genuine stream
			// is alive, so any quarantine candidate is noise.
			u.jumpRun = 0
			c.stats.Stale++
			//pcslint:ignore callback-under-lock -- the sink contract is serial in-order delivery under the correlator lock; sinks must not re-enter the Correlator (package doc)
			return c.sink(Event{Unit: unit, Seq: seq, Outcome: Stale, View: typ})
		}
	case seq-u.next >= w:
		if room := seq - u.next; room-w+1 > w*jumpFactor {
			if adopted, err := c.quarantine(u, unit, typ, seq); !adopted || err != nil {
				return err
			}
		} else if err := c.advanceTo(u, unit, u.next+(room-w+1)); err != nil {
			// The window must slide: evict all older than seq-Window+1.
			return err
		}
	}
	s := &u.ring[(u.base+int(seq-u.next))%c.cfg.Window]
	if s.empty() {
		c.stats.Steps++
		c.steps.Add(1)
		c.stats.PendingSteps++
		if c.cfg.MaxAge > 0 {
			//pcslint:ignore callback-under-lock -- the injected clock is a pure reading (time.Now or a replay cursor) and cannot re-enter the correlator
			s.at = c.cfg.Clock().UnixNano()
		}
	}
	dst := &s.sens
	if typ == fieldbus.FrameActuator {
		dst = &s.act
	}
	if *dst != nil {
		u.jumpRun = 0 // in-window traffic, even redundant, clears the candidate
		c.stats.Duplicates++
		//pcslint:ignore callback-under-lock -- the sink contract is serial in-order delivery under the correlator lock; sinks must not re-enter the Correlator (package doc)
		return c.sink(Event{Unit: unit, Seq: seq, Outcome: Duplicate, View: typ})
	}
	buf := c.getRow()
	copy(buf, row)
	*dst = buf
	u.pending++
	c.stats.PendingFrames++
	// Every non-outlier frame clears the quarantine candidate (placed
	// here, duplicates and stale drops at their returns above), so epoch
	// adoption requires epochFrames outliers with NO other traffic in
	// between — "consecutive" means consecutive in the whole frame
	// stream, whichever path (in-window, window slide, rebase, dup,
	// stale) the genuine frames take.
	u.jumpRun = 0
	return c.drain(u, unit)
}

// OfferFrame ingests a decoded fieldbus frame.
func (c *Correlator) OfferFrame(f *fieldbus.Frame) error {
	if f == nil {
		return fmt.Errorf("pairing: nil frame: %w", ErrBadFrame)
	}
	return c.Offer(f.Type, f.Unit, f.Seq, f.Values)
}

// Tick applies the age horizon: every slot whose first frame is older than
// MaxAge (and every gap blocking one) is flushed. A zero MaxAge makes Tick
// a no-op.
func (c *Correlator) Tick(now time.Time) error {
	if c.cfg.MaxAge <= 0 {
		return nil
	}
	horizon := now.Add(-c.cfg.MaxAge).UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for id := 0; id < len(c.units); id++ {
		u := c.units[id]
		if u == nil {
			continue
		}
		for u.pending > 0 && c.headArrival(u) <= horizon {
			if err := c.flushHead(u, uint8(id)); err != nil {
				return err
			}
			if err := c.drain(u, uint8(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush drains every pending slot of every unit (in unit order) as if its
// missing frames will never arrive. The correlator stays usable.
func (c *Correlator) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.flushAll()
}

// Close flushes all pending slots and rejects further operations.
func (c *Correlator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	err := c.flushAll()
	c.closed = true
	return err
}

// Stats snapshots the accounting counters.
func (c *Correlator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// StepCount returns the number of distinct (unit, seq) observations seen,
// without taking the correlator lock — the cheap per-frame progress probe
// for ingestion caps.
func (c *Correlator) StepCount() uint64 { return c.steps.Load() }

func (c *Correlator) flushAll() error {
	for id := 0; id < len(c.units); id++ {
		u := c.units[id]
		if u == nil {
			continue
		}
		for u.pending > 0 {
			if err := c.flushHead(u, uint8(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

// unit returns (lazily creating) the per-unit state.
func (c *Correlator) unit(id uint8) *unitState {
	u := c.units[id]
	if u == nil {
		//pcslint:ignore hotpath -- per-unit state is built once, on the first frame a unit ever sends
		u = &unitState{ring: make([]slot, c.cfg.Window)}
		c.units[id] = u
		c.nUnits++
		c.stats.Units = c.nUnits
	}
	return u
}

// drain emits completed head slots — the in-order fast path.
//
// Before the unit's first emission the drain is held back: the window
// anchor was set by whichever frame happened to arrive first, so a
// completed head might still be overtaken by reordered earlier sequence
// numbers (which rebaseDown can only honour while nothing has been
// emitted). The first emission is therefore always forced — by window
// overflow, the age horizon or a flush — after which the head is provably
// the lowest outstanding sequence number and completion drains instantly.
func (c *Correlator) drain(u *unitState, unit uint8) error {
	if !u.emitted {
		return nil
	}
	for {
		s := &u.ring[u.base]
		if s.sens == nil || s.act == nil {
			return nil
		}
		if err := c.emitHead(u, unit, s); err != nil {
			return err
		}
	}
}

// flushHead evicts the head slot: a present pair or half emits as
// Paired/orphan, a missing head coalesces with the following run of
// missing sequence numbers into one GapDetected.
func (c *Correlator) flushHead(u *unitState, unit uint8) error {
	s := &u.ring[u.base]
	if !s.empty() {
		return c.emitHead(u, unit, s)
	}
	// Coalesce the run of missing seqs up to the next occupied slot.
	w := c.cfg.Window
	span := 1
	for span < w && u.ring[(u.base+span)%w].empty() {
		span++
	}
	if span == w {
		// Nothing pending at all — callers guard on u.pending > 0.
		return nil
	}
	u.next += uint64(span)
	u.base = (u.base + span) % w
	u.emitted = true
	c.stats.GapEvents++
	c.stats.GapSeqs += uint64(span)
	c.stats.ExpectedFrames += uint64(span) * u.viewsKnown()
	c.stats.MissingFrames += uint64(span) * u.viewsKnown()
	return c.sink(Event{Unit: unit, Seq: u.next - uint64(span), Outcome: GapDetected, Span: uint64(span)})
}

// Epoch-jump quarantine tuning: a jump of more than jumpFactor windows
// past the horizon is an outlier; epochFrames consecutive outliers inside
// one window-sized region confirm a genuine new epoch.
const (
	jumpFactor  = 16
	epochFrames = 3
)

// quarantine handles a frame whose sequence number jumped implausibly far
// from the horizon (either direction). It reports whether the frame was
// adopted (a confirmed epoch: the window has been moved and the caller
// should place the frame); a non-adopted frame has been dropped and
// accounted as an Outlier.
func (c *Correlator) quarantine(u *unitState, unit uint8, typ fieldbus.FrameType, seq uint64) (bool, error) {
	w := uint64(c.cfg.Window)
	inRegion := u.jumpRun > 0 &&
		seq+w > u.jumpLow && seq < u.jumpLow+w &&
		maxU64(u.jumpHigh, seq)-minU64(u.jumpLow, seq) < w
	if !inRegion {
		u.jumpLow, u.jumpHigh, u.jumpRun = seq, seq, 1
	} else {
		u.jumpLow = minU64(u.jumpLow, seq)
		u.jumpHigh = maxU64(u.jumpHigh, seq)
		u.jumpRun++
	}
	if u.jumpRun < epochFrames {
		c.stats.Outliers++
		return false, c.sink(Event{Unit: unit, Seq: seq, Outcome: Outlier, View: typ})
	}
	// Confirmed epoch: drain the old window and re-anchor at the region's
	// lowest sequence number — recording the skipped range as one gap when
	// the epoch moved forward, or an epoch reset when the numbering
	// restarted below the old horizon.
	for u.pending > 0 {
		if err := c.flushHead(u, unit); err != nil {
			return false, err
		}
	}
	from := u.next
	u.next = u.jumpLow
	u.emitted = true
	u.jumpRun = 0
	if u.jumpLow >= from {
		span := u.jumpLow - from
		c.stats.GapEvents++
		c.stats.GapSeqs += span
		c.stats.ExpectedFrames += span * u.viewsKnown()
		c.stats.MissingFrames += span * u.viewsKnown()
		return true, c.sink(Event{Unit: unit, Seq: from, Outcome: GapDetected, Span: span})
	}
	return true, c.sink(Event{Unit: unit, Seq: u.jumpLow, Outcome: EpochReset})
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// rebaseDown slides the window start down to seq — legal only before the
// unit's first emission (the anchor was set by whichever frame happened to
// arrive first; reordered earlier frames must not read as stale) and only
// while every pending slot still fits the window.
func (c *Correlator) rebaseDown(u *unitState, seq uint64) bool {
	if u.emitted {
		return false
	}
	shift := u.next - seq
	if shift >= uint64(c.cfg.Window) {
		return false
	}
	w := c.cfg.Window
	highest := 0
	for i := w - 1; i >= 0; i-- {
		if !u.ring[(u.base+i)%w].empty() {
			highest = i
			break
		}
	}
	if highest+int(shift) >= w {
		return false
	}
	u.base = (u.base - int(shift)%w + w) % w
	u.next = seq
	return true
}

// advanceTo forces the head past every sequence number below target,
// emitting pairs, orphans and coalesced gaps.
func (c *Correlator) advanceTo(u *unitState, unit uint8, target uint64) error {
	w := c.cfg.Window
	for u.next < target {
		s := &u.ring[u.base]
		if !s.empty() {
			if err := c.emitHead(u, unit, s); err != nil {
				return err
			}
			continue
		}
		// Coalesce missing seqs: up to the next occupied slot, but never
		// past target.
		span := uint64(1)
		for span < uint64(w) && u.next+span < target && u.ring[(u.base+int(span))%w].empty() {
			span++
		}
		if span == uint64(w) && target-u.next > span {
			// The whole window is empty; everything below target is missing.
			span = target - u.next
		}
		u.next += span
		u.base = (u.base + int(span%uint64(w))) % w
		u.emitted = true
		c.stats.GapEvents++
		c.stats.GapSeqs += span
		c.stats.ExpectedFrames += span * u.viewsKnown()
		c.stats.MissingFrames += span * u.viewsKnown()
		if err := c.sink(Event{Unit: unit, Seq: u.next - span, Outcome: GapDetected, Span: span}); err != nil {
			return err
		}
	}
	return nil
}

// emitHead classifies and emits the (non-empty) head slot, updates the
// hold-last state by buffer swap, advances the window, and runs the stall
// detector. Buffers are recycled only after the sink has returned.
//
//pcslint:hotpath
func (c *Correlator) emitHead(u *unitState, unit uint8, s *slot) error {
	seq := u.next
	ev := Event{Unit: unit, Seq: seq, Ctrl: s.sens, Proc: s.act}
	frames := 0
	switch {
	case s.sens != nil && s.act != nil:
		ev.Outcome = Paired
		frames = 2
		c.stats.Paired++
		c.stats.ExpectedFrames += 2
	case s.sens != nil:
		ev.Outcome = OrphanSensor
		ev.View = fieldbus.FrameActuator
		frames = 1
		c.stats.OrphanSensors++
		if u.seenAct {
			// The actuator view HAS delivered before: its frame was
			// expected and is genuinely missing.
			ev.Proc = u.lastAct
			ev.Held = true
			c.stats.ExpectedFrames += 2
			c.stats.MissingFrames++
		} else {
			// Mirror: plain single-view feed — one frame expected, none lost.
			ev.Proc = s.sens
			c.stats.ExpectedFrames++
		}
	default:
		ev.Outcome = OrphanActuator
		ev.View = fieldbus.FrameSensor
		frames = 1
		c.stats.OrphanActuators++
		if u.seenSens {
			ev.Ctrl = u.lastSens
			ev.Held = true
			c.stats.ExpectedFrames += 2
			c.stats.MissingFrames++
		} else {
			ev.Ctrl = s.act // mirror: plain single-view feed
			c.stats.ExpectedFrames++
		}
	}
	sens, act := s.sens, s.act
	s.sens, s.act, s.at = nil, nil, 0
	u.pending -= frames
	u.next++
	u.base = (u.base + 1) % c.cfg.Window
	u.emitted = true
	c.stats.PendingFrames -= uint64(frames)
	c.stats.PendingSteps--
	if err := c.sink(ev); err != nil {
		c.putRow(sens)
		c.putRow(act)
		return err
	}
	// Hold-last update by pointer swap: the just-delivered row becomes the
	// view's memory, the old memory buffer returns to the free list.
	if sens != nil {
		c.putRow(u.lastSens)
		u.lastSens, u.seenSens = sens, true
	}
	if act != nil {
		c.putRow(u.lastAct)
		u.lastAct, u.seenAct = act, true
	}
	return c.stall(u, unit, seq, ev)
}

// stall updates the consecutive hold-last counters and emits ViewStalled
// when a view crosses the threshold. A delivered frame of a view resets
// its counter and re-arms the detector (stalls are episodic).
func (c *Correlator) stall(u *unitState, unit uint8, seq uint64, ev Event) error {
	// A view whose frame was delivered in this observation is healthy:
	// reset its counter and re-arm its detector.
	if ev.Outcome == Paired || ev.Outcome == OrphanSensor {
		u.heldSensRun, u.stalledSens = 0, false
	}
	if ev.Outcome == Paired || ev.Outcome == OrphanActuator {
		u.heldActRun, u.stalledAct = 0, false
	}
	if !ev.Held || c.cfg.StallAfter < 0 {
		return nil
	}
	switch ev.Outcome {
	case OrphanSensor:
		u.heldActRun++
		if u.heldActRun >= c.cfg.StallAfter && !u.stalledAct {
			u.stalledAct = true
			c.stats.Stalls++
			return c.sink(Event{Unit: unit, Seq: seq, Outcome: ViewStalled, View: fieldbus.FrameActuator})
		}
	case OrphanActuator:
		u.heldSensRun++
		if u.heldSensRun >= c.cfg.StallAfter && !u.stalledSens {
			u.stalledSens = true
			c.stats.Stalls++
			return c.sink(Event{Unit: unit, Seq: seq, Outcome: ViewStalled, View: fieldbus.FrameSensor})
		}
	}
	return nil
}

// headArrival returns the first-arrival stamp of the slot a flushHead
// would emit — the first occupied slot from the head. Gating the age
// horizon on this slot (not the ring-wide oldest) keeps a fresh head from
// being force-orphaned just because a newer-sequence slot behind it has
// expired: the expired slot simply waits its in-order turn. Callers guard
// on u.pending > 0.
func (c *Correlator) headArrival(u *unitState) int64 {
	w := c.cfg.Window
	for i := 0; i < w; i++ {
		s := &u.ring[(u.base+i)%w]
		if !s.empty() {
			return s.at
		}
	}
	return 1<<63 - 1
}

// getRow takes a Cols-sized row buffer from the free list.
func (c *Correlator) getRow() []float64 {
	if n := len(c.free); n > 0 {
		buf := c.free[n-1]
		c.free = c.free[:n-1]
		return buf
	}
	//pcslint:ignore hotpath -- free-list miss: row buffers are allocated only until the pool covers the in-flight window, then recycled
	return make([]float64, c.cfg.Cols)
}

// putRow returns a row buffer to the free list.
func (c *Correlator) putRow(buf []float64) {
	if buf == nil {
		return
	}
	//pcslint:ignore hotpath -- free-list growth is bounded by the pairing window; after warm-up every push reuses the spare capacity
	c.free = append(c.free, buf)
}
