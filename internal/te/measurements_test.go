package te

import (
	"math"
	"testing"
)

// TestMeasurementUnitMappings checks the engineering-unit relations between
// internal stream quantities and the XMEAS vector.
func TestMeasurementUnitMappings(t *testing.T) {
	p := newTestProcess(t, Config{NoProcessNoise: true, NoMeasurementNoise: true})
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	m := p.TrueMeasurements()
	_, _, _, streams := p.Debug()
	// Molar reactor feed (streams[0] = F6 in kmol/h) ↔ XMEAS(6) in kscmh.
	if got, want := m[XmeasReactorFeed], streams[0]*kscmhPerKmol; math.Abs(got-want) > 1e-9 {
		t.Errorf("XMEAS(6) = %g, want %g from F6", got, want)
	}
	// Recycle and purge mappings.
	if got, want := m[XmeasRecycle], streams[2]*kscmhPerKmol; math.Abs(got-want) > 1e-9 {
		t.Errorf("XMEAS(5) = %g, want %g from F5", got, want)
	}
	if got, want := m[XmeasPurgeRate], streams[3]*kscmhPerKmol; math.Abs(got-want) > 1e-9 {
		t.Errorf("XMEAS(10) = %g, want %g from F9", got, want)
	}
	// D and E feeds are mass flows (kg/h = kmol/h × molWeight).
	f2kmol := m[XmeasDFeed] / molWeight[CompD]
	if f2kmol <= 0 || f2kmol > f2Max {
		t.Errorf("D feed %g kmol/h out of range (0,%g]", f2kmol, f2Max)
	}
	f3kmol := m[XmeasEFeed] / molWeight[CompE]
	if f3kmol <= 0 || f3kmol > f3Max {
		t.Errorf("E feed %g kmol/h out of range (0,%g]", f3kmol, f3Max)
	}
}

// TestCompositionBlocksSumToHundred: the three analyzer blocks measure mole
// percentages; each block must sum to ≈100 %.
func TestCompositionBlocksSumToHundred(t *testing.T) {
	p := newTestProcess(t, Config{NoProcessNoise: true, NoMeasurementNoise: true})
	// Let the analyzer lags converge.
	for i := 0; i < 2000; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m := p.TrueMeasurements()
	blocks := []struct {
		name     string
		from, to int // inclusive
		partial  bool
	}{
		// The feed analyzer reports A–F only (G/H traces are unreported),
		// so its sum may fall slightly short of 100.
		{"reactor feed A–F", XmeasFeedA, XmeasFeedF, true},
		{"purge A–H", XmeasPurgeA, XmeasPurgeH, false},
		{"product D–H", XmeasProductD, XmeasProductH, true},
	}
	for _, blk := range blocks {
		var sum float64
		for j := blk.from; j <= blk.to; j++ {
			sum += m[j]
		}
		lo := 99.0
		if blk.partial {
			lo = 90.0
		}
		if sum < lo || sum > 100.5 {
			t.Errorf("%s sums to %.2f%%, want within [%g,100.5]", blk.name, sum, lo)
		}
	}
}

// TestPressureLevelTemperatureSanity: derived quantities stay physical
// through a long noisy run.
func TestPressureLevelTemperatureSanity(t *testing.T) {
	p := newTestProcess(t, Config{Seed: 21})
	for i := 0; i < 4000; i++ {
		if err := p.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		m := p.TrueMeasurements()
		if m[XmeasReactorPress] < 500 || m[XmeasReactorPress] > 3500 {
			t.Fatalf("step %d: reactor pressure %g", i, m[XmeasReactorPress])
		}
		if m[XmeasSepPress] >= m[XmeasReactorPress] {
			t.Fatalf("step %d: separator pressure %g ≥ reactor %g (flow would reverse)",
				i, m[XmeasSepPress], m[XmeasReactorPress])
		}
		for _, lvl := range []int{XmeasReactorLevel, XmeasSepLevel, XmeasStripLevel} {
			if m[lvl] < 0 || m[lvl] > 150 {
				t.Fatalf("step %d: level %s = %g", i, XMEASNames[lvl], m[lvl])
			}
		}
		if m[XmeasReactorTemp] < 80 || m[XmeasReactorTemp] > 180 {
			t.Fatalf("step %d: reactor temperature %g", i, m[XmeasReactorTemp])
		}
	}
}

// TestMassConservationClosedValves: with all feed valves shut and no
// reactions possible once reactants are gone, total inventory must never
// increase.
func TestMassConservationClosedValves(t *testing.T) {
	p := newTestProcess(t, Config{NoProcessNoise: true, NoMeasurementNoise: true, StepSeconds: 4.5})
	for _, v := range []int{XmvAFeed, XmvDFeed, XmvEFeed, XmvACFeed} {
		if err := p.SetXMV(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	total := func() float64 {
		_, nR, nSg, _ := p.Debug()
		var s float64
		for c := 0; c < 8; c++ {
			s += nR[c] + nSg[c]
		}
		return s
	}
	// Let the valves close.
	for i := 0; i < 20; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	prev := total()
	for i := 0; i < 400; i++ {
		if err := p.Step(); err != nil {
			break // an interlock trip is acceptable here
		}
		cur := total()
		if cur > prev+1e-6 {
			t.Fatalf("step %d: gas-phase inventory grew %.9f → %.9f with feeds shut", i, prev, cur)
		}
		prev = cur
	}
}

// TestDebugAccessorShapes: the development accessor stays consistent.
func TestDebugAccessorShapes(t *testing.T) {
	p := newTestProcess(t, Config{NoProcessNoise: true, NoMeasurementNoise: true})
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	rates, nR, nSg, streams := p.Debug()
	for i, r := range rates {
		if r < 0 {
			t.Errorf("rate[%d] = %g < 0", i, r)
		}
	}
	for c := 0; c < 8; c++ {
		if nR[c] < 0 || nSg[c] < 0 {
			t.Errorf("negative inventory at component %d", c)
		}
	}
	for i, s := range streams {
		if s < 0 {
			t.Errorf("stream[%d] = %g < 0", i, s)
		}
	}
}
