package te

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Package-level sentinel errors.
var (
	// ErrBadConfig is returned for invalid configuration values.
	ErrBadConfig = errors.New("te: invalid configuration")
	// ErrBadIndex is returned for out-of-range XMV/XMEAS/IDV indices.
	ErrBadIndex = errors.New("te: index out of range")
	// ErrShutdown is returned by Step once a safety interlock has tripped.
	ErrShutdown = errors.New("te: process is shut down")
)

// Config parameterizes a Process. The zero value is valid: seed 0,
// 1.8-second steps, process and measurement noise enabled.
type Config struct {
	// Seed seeds the process noise and measurement noise generator.
	Seed int64
	// StepSeconds is the integration and sampling interval (default 1.8 s,
	// the paper's 2000-samples-per-hour cadence).
	StepSeconds float64
	// NoProcessNoise disables the slow Ornstein–Uhlenbeck input variation
	// (the Krotofil added-randomness model).
	NoProcessNoise bool
	// NoMeasurementNoise disables per-channel Gaussian sensor noise.
	NoMeasurementNoise bool
	// DiscreteAnalyzers switches the composition measurements (XMEAS
	// 23–41) from first-order lags to the original model's sample-and-hold
	// chromatographs: the feed and purge analyzers update every 6 minutes,
	// the product analyzer every 15 minutes, each holding its last reading
	// in between.
	DiscreteAnalyzers bool
}

// Model tuning constants. Volumes are loosely patterned on Downs & Vogel;
// the transport/split coefficients are calibrated so the settled operating
// point lands near the published base case (see vars.go) and the IDV(6)
// shutdown occurs hours after onset, matching the paper's Figure 3.
const (
	rGas = 8.314 // kJ/(kmol·K) — P[kPa]·V[m³] = n[kmol]·R·T[K]

	vReactorTotal = 36.8 // m³ vessel
	// vGasLoopExtra lumps the recycle piping, compressor and header volumes
	// into the reactor vapor space. Without it the pressure↔outflow
	// feedback has a ~1.5 s time constant — stiffer than any practical
	// sampling interval; with it the fastest gas mode relaxes to ~4.7 s and
	// the explicit integration is stable for sampling steps up to ~4.5 s.
	vGasLoopExtra = 60.0   // m³
	vSeparator    = 99.1   // m³
	vStripCap     = 24.0   // m³ liquid capacity (level 100 %)
	vReactLiqCap  = 10.667 // m³ liquid capacity (base 8 m³ = 75 %)
	vSepLiqCap    = 12.0   // m³ liquid capacity (base 6 m³ = 50 %)

	valveTauH = 10.0 / 3600 // valve actuator first-order lag [h]

	// Flow coefficients: flow at 100 % valve, base pressures.
	f1Max  = 45.44  // kmol/h, A feed
	f2Max  = 181.6  // kmol/h, D feed
	f3Max  = 181.5  // kmol/h, E feed
	f4Max  = 680.2  // kmol/h, A+C feed
	kRec   = 2.0513 // kmol/h per (kPa·valve-fraction), recycle
	kPurge = 0.019  // kmol/h per (kPa·valve-fraction), purge

	// Reaction rate exponents. Downs & Vogel's C exponents (~0.3) give the
	// reduced-order loop almost no composition self-correction — excess C
	// then has to leave through the purge, which also bleeds A and
	// destabilizes the material balance. The surrogate uses stronger C
	// dependence, trading kinetic fidelity for the loop-level behaviour the
	// paper's experiments actually exercise (see DESIGN.md §2).
	expR1A, expR1C, expR1D = 1.00, 0.80, 0.90
	expR2A, expR2C, expR2E = 1.00, 0.80, 1.00
	kF7                    = 20.66 // kmol/h per kPa of reactor→separator ΔP
	f10Vmax                = 66.0  // m³/h at 100 % valve, separator underflow
	f11Vmax                = 48.56 // m³/h at 100 % valve, product flow

	// Energy balance coefficients (°C/h basis; see DESIGN.md).
	heatRx     = 60.0  // adiabatic heating rate at base reaction rate
	kCoolR     = 1.282 // reactor cooling per valve-fraction per °C
	kFeedR     = 0.248 // reactor feed sensible term
	kInSep     = 2.0   // separator feed sensible term
	kCoolS     = 9.87  // condenser cooling per valve-fraction per °C
	kSteamStr  = 2.0   // stripper steam heating
	kInStr     = 1.5   // stripper feed sensible term
	kLossStr   = 4.315 // stripper ambient loss (balances the base case)
	tAmbient   = 40.0  // °C stripper loss reference
	tSteam     = 160.0 // °C steam temperature
	tFreshBase = 45.0  // °C fresh feed temperature
	tCWInBase  = 35.0  // °C cooling water inlet

	// Base temperatures (targets; settled values may differ slightly).
	tReactBase = 120.40
	tSepBase   = 80.109
	tStripBase = 65.731

	// Base reaction rates [kmol/h] used to calibrate rate constants.
	r1Base = 113.5 // A+C+D → G
	r2Base = 92.6  // A+C+E → H
	r3Base = 4.0   // A+E → F
	r4Base = 0.3   // 3D → 2F

	kscmhPerKmol = 1.0 / 44.6 // kscmh per kmol/h of gas
)

// Per-component property vectors (A..H).
var (
	// molWeight, kg/kmol (Downs & Vogel Table 2).
	molWeight = [numComp]float64{2.0, 25.4, 28.0, 32.0, 46.0, 48.0, 62.0, 76.0}
	// vmol: liquid molar volume, m³/kmol.
	vmol = [numComp]float64{0.05, 0.05, 0.05, 0.09, 0.10, 0.10, 0.105, 0.11}
	// phiVap: fraction of the reactor holdup of each component in the vapor
	// phase (lights fully vapor, heavies mostly liquid).
	phiVap = [numComp]float64{1, 1, 1, 0.95, 0.95, 0.08, 0.01, 0.005}
	// alphaVol: relative transport weight into the reactor outflow. The
	// light components live almost entirely in the large lumped gas-loop
	// volume, so their per-mole weight is low; the heavies' weights are
	// calibrated so the base-case product make leaves at the base level.
	alphaVol = [numComp]float64{3.63, 3.34, 3.04, 0.667, 0.865, 0.8, 0.42, 0.45}
	// svSep: fraction of the separator inflow of each component leaving as
	// vapor (recycle+purge) at the base separator temperature.
	svSep = [numComp]float64{0.998, 0.997, 0.995, 0.88, 0.80, 0.30, 0.012, 0.006}
	// svSepT: sensitivity of the vapor split to separator temperature
	// [fraction per °C].
	svSepT = [numComp]float64{0, 0, 0, 0.004, 0.006, 0.004, 0.0008, 0.0004}
	// stripEff: fraction of the stripper feed of each component stripped
	// straight back to the gas loop at base steam.
	stripEff = [numComp]float64{0.999, 0.999, 0.999, 0.997, 0.97, 0.30, 0.003, 0.001}
)

// flowsState caches the most recent per-step stream values for measurement
// mapping and diagnostics.
type flowsState struct {
	f1, f2, f3, f4 float64 // fresh feeds [kmol/h]
	f5             float64 // recycle [kmol/h]
	f6             float64 // reactor feed [kmol/h]
	f7             float64 // reactor outflow [kmol/h]
	f9             float64 // purge [kmol/h]
	f10Vol         float64 // separator underflow [m³/h]
	f10Mol         float64 // separator underflow [kmol/h]
	f11Vol         float64 // product [m³/h]
	f11Mol         float64 // product [kmol/h]
	ovMol          float64 // stripper overhead [kmol/h]
	feedComp       [numComp]float64
	purgeComp      [numComp]float64
	prodComp       [numComp]float64
	rates          [4]float64 // instantaneous reaction rates [kmol/h]
	t6             float64    // mixed reactor feed temperature [°C]
	pR, pS, pSt    float64    // pressures [kPa]
	lvlR, lvlS     float64    // levels [%]
	lvlSt          float64
	rxnHeatNorm    float64 // normalized reaction heat
	compWork       float64
	cwOutR, cwOutS float64
}

// Process is the reduced-order TE plant. It is not safe for concurrent
// use; each simulation run owns one Process.
type Process struct {
	cfg Config
	rng *rand.Rand
	dt  float64 // hours
	now float64 // hours since start

	cmd   [NumXMV]float64 // commanded valve positions (what the process receives)
	valve [NumXMV]lag     // actuator lags
	stick [NumXMV]stiction

	nR  [numComp]float64 // reactor holdup [kmol]
	nSg [numComp]float64 // separator gas holdup
	nSl [numComp]float64 // separator liquid holdup
	nSt [numComp]float64 // stripper liquid holdup
	tR  float64          // reactor temperature [°C]
	tS  float64
	tSt float64

	idv [NumIDV]bool

	// Background process variation (always on unless NoProcessNoise) plus
	// the extra channels activated by the random-variation IDVs.
	ouHdrA, ouHdrC       *ou
	ouXA4, ouXB4         *ou
	ouTd, ouTc           *ou
	ouTcwR, ouTcwS       *ou
	ouKin, ouSteam       *ou
	ouComp               *ou
	xA4Extra, xB4Extra   *ou // IDV(8)
	tdExtra, tcExtra     *ou // IDV(9), IDV(10)
	tcwRExtra, tcwSExtra *ou // IDV(11), IDV(12)
	kinExtra             *ou // IDV(13)
	steamExtra           *ou // IDV(16)
	compExtra            *ou // IDV(20)
	foulR, foulS         float64

	anFeed  [6]lag
	anPurge [8]lag
	anProd  [5]lag
	// Sample-and-hold analyzer state (DiscreteAnalyzers mode).
	anFeedHold   [6]float64
	anPurgeHold  [8]float64
	anProdHold   [5]float64
	anFastTimer  float64 // hours until the 6-minute analyzers sample again
	anSlowTimer  float64 // hours until the 15-minute analyzer samples again
	anHoldPrimed bool

	rateK [4]float64 // calibrated reaction rate constants

	flows flowsState
	meas  [NumXMEAS]float64 // cached noisy measurements for the current step
	truth [NumXMEAS]float64 // cached noiseless measurements

	down          bool
	downReason    string
	interlocksOff bool
}

// New constructs a Process at the nominal initial state. Callers normally
// warm the plant up under closed-loop control (see the plant package)
// before using it as a calibration reference.
func New(cfg Config) (*Process, error) {
	if cfg.StepSeconds == 0 {
		cfg.StepSeconds = 1.8
	}
	if cfg.StepSeconds < 0 || cfg.StepSeconds > 60 {
		return nil, fmt.Errorf("te: step %.3gs out of (0,60]: %w", cfg.StepSeconds, ErrBadConfig)
	}
	p := &Process{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		dt:  cfg.StepSeconds / 3600,

		// Initial inventories: an approximate base-case guess sized for the
		// lumped gas-loop volume; the warmup relaxes this to the model's
		// own steady state.
		nR:  [numComp]float64{25.1, 7.25, 20.4, 7.12, 16.3, 4.5, 42, 31},
		tR:  tReactBase,
		tS:  tSepBase,
		tSt: tStripBase,

		foulR: 1, foulS: 1,
	}
	// Separator gas: sized for the pressure the fixed recycle valve needs
	// to carry the design recycle flow (≈2770 kPa, above the Downs–Vogel
	// 2634 — the surrogate recycle loop carries more unreacted gas), with
	// a composition near the reactor outflow's vapor split.
	sepGasComp := [numComp]float64{0.40, 0.115, 0.30, 0.015, 0.10, 0.015, 0.035, 0.02}
	const sepPressInit = 2770.0
	nGas := sepPressInit * (vSeparator - 6.0) / (rGas * (tSepBase + 273.15))
	for c := 0; c < numComp; c++ {
		p.nSg[c] = nGas * sepGasComp[c]
	}
	// Separator liquid: 6 m³ of mostly G/H with dissolved lights.
	sepLiqComp := [numComp]float64{0.008, 0.001, 0.008, 0.047, 0.205, 0.0085, 0.434, 0.2885}
	nSepLiq := 6.0 / compositeVmol(sepLiqComp)
	for c := 0; c < numComp; c++ {
		p.nSl[c] = nSepLiq * sepLiqComp[c]
	}
	// Stripper liquid: 14.4 m³ (60 % of capacity) at product composition —
	// the extra margin covers the warmup transient's level dip; the level
	// trim settles it back to 50 %.
	prodComp := [numComp]float64{0.0001, 0, 0.0001, 0.0002, 0.0084, 0.011, 0.542, 0.4382}
	nStr := 14.4 / compositeVmol(prodComp)
	for c := 0; c < numComp; c++ {
		p.nSt[c] = nStr * prodComp[c]
	}

	for i := 0; i < NumXMV; i++ {
		p.cmd[i] = BaseXMV[i]
		p.valve[i] = lag{tau: valveTauH}
		p.valve[i].force(BaseXMV[i])
	}

	p.initNoise()
	p.initAnalyzers()
	p.calibrateRateConstants()
	p.step(true) // prime flows/measurements without advancing time
	return p, nil
}

func (p *Process) initNoise() {
	p.ouHdrA = newOU(1, 0.3, 0.004)
	p.ouHdrC = newOU(1, 0.3, 0.004)
	p.ouXA4 = newOU(0.485, 1.5, 0.003)
	p.ouXB4 = newOU(0.005, 1.5, 0.0005)
	p.ouTd = newOU(0, 1.0, 0.8)
	p.ouTc = newOU(0, 1.0, 0.8)
	p.ouTcwR = newOU(tCWInBase, 0.8, 0.25)
	p.ouTcwS = newOU(tCWInBase, 0.8, 0.25)
	p.ouKin = newOU(1, 4.0, 0.003)
	p.ouSteam = newOU(1, 0.5, 0.004)
	p.ouComp = newOU(1, 1.0, 0.004)

	p.xA4Extra = newOU(0, 1.0, 0.018)
	p.xB4Extra = newOU(0, 1.0, 0.003)
	p.tdExtra = newOU(0, 1.0, 4.0)
	p.tcExtra = newOU(0, 1.0, 4.0)
	p.tcwRExtra = newOU(0, 0.8, 2.5)
	p.tcwSExtra = newOU(0, 0.8, 2.5)
	p.kinExtra = newOU(0, 8.0, 0.02)
	p.steamExtra = newOU(0, 0.5, 0.02)
	p.compExtra = newOU(0, 1.0, 0.02)
}

func (p *Process) initAnalyzers() {
	const analyzerTau = 0.1 // 6 minutes
	for i := range p.anFeed {
		p.anFeed[i] = lag{tau: analyzerTau}
	}
	for i := range p.anPurge {
		p.anPurge[i] = lag{tau: analyzerTau}
	}
	for i := range p.anProd {
		p.anProd[i] = lag{tau: 0.25} // product analyzer: 15 minutes
	}
}

func compositeVmol(x [numComp]float64) float64 {
	var v float64
	for c := 0; c < numComp; c++ {
		v += x[c] * vmol[c]
	}
	if v <= 0 {
		return 0.1
	}
	return v
}

// calibrateRateConstants fixes the four reaction rate constants from the
// nominal initial state so the base rates are hit at the base partial
// pressures. Called once from New, before any integration.
func (p *Process) calibrateRateConstants() {
	pA, pC, pD, pE := p.partialPressures()
	p.rateK[0] = r1Base / (math.Pow(pA, expR1A) * math.Pow(pC, expR1C) * math.Pow(pD, expR1D))
	p.rateK[1] = r2Base / (math.Pow(pA, expR2A) * math.Pow(pC, expR2C) * math.Pow(pE, expR2E))
	p.rateK[2] = r3Base / (pA * pE)
	p.rateK[3] = r4Base / pD
}

// partialPressures returns the reactor partial pressures of A, C, D, E in
// units of 1000 kPa (dimensionless for the power laws).
func (p *Process) partialPressures() (pA, pC, pD, pE float64) {
	var nGas float64
	for c := 0; c < numComp; c++ {
		nGas += phiVap[c] * p.nR[c]
	}
	if nGas <= 0 {
		return 0, 0, 0, 0
	}
	pr := p.reactorPressure()
	f := pr / (1000 * nGas)
	return math.Max(0, phiVap[CompA]*p.nR[CompA]*f),
		math.Max(0, phiVap[CompC]*p.nR[CompC]*f),
		math.Max(0, phiVap[CompD]*p.nR[CompD]*f),
		math.Max(0, phiVap[CompE]*p.nR[CompE]*f)
}

func (p *Process) reactorLiquidVolume() float64 {
	var v float64
	for c := 0; c < numComp; c++ {
		v += (1 - phiVap[c]) * p.nR[c] * vmol[c]
	}
	return v
}

func (p *Process) reactorPressure() float64 {
	var nGas float64
	for c := 0; c < numComp; c++ {
		nGas += phiVap[c] * p.nR[c]
	}
	vg := vReactorTotal + vGasLoopExtra - p.reactorLiquidVolume()
	if vg < 1 {
		vg = 1
	}
	return nGas * rGas * (p.tR + 273.15) / vg
}

func (p *Process) sepLiquidVolume() float64 {
	var v float64
	for c := 0; c < numComp; c++ {
		v += p.nSl[c] * vmol[c]
	}
	return v
}

func (p *Process) sepPressure() float64 {
	var nGas float64
	for c := 0; c < numComp; c++ {
		nGas += p.nSg[c]
	}
	vg := vSeparator - p.sepLiquidVolume()
	if vg < 5 {
		vg = 5
	}
	return nGas * rGas * (p.tS + 273.15) / vg
}

func (p *Process) stripLiquidVolume() float64 {
	var v float64
	for c := 0; c < numComp; c++ {
		v += p.nSt[c] * vmol[c]
	}
	return v
}

// Step advances the plant by one sampling interval. It returns ErrShutdown
// (and leaves the state frozen) once an interlock has tripped.
func (p *Process) Step() error {
	if p.down {
		return fmt.Errorf("%w: %s", ErrShutdown, p.downReason)
	}
	p.step(false)
	return nil
}

// step performs one integration step; when prime is true it only refreshes
// the derived quantities and measurement cache without advancing state.
func (p *Process) step(prime bool) {
	dt := p.dt
	if prime {
		dt = 0
	}

	// 1. Advance stochastic inputs.
	noise := !p.cfg.NoProcessNoise && !prime
	if noise {
		p.ouHdrA.step(dt, p.rng)
		p.ouHdrC.step(dt, p.rng)
		p.ouXA4.step(dt, p.rng)
		p.ouXB4.step(dt, p.rng)
		p.ouTd.step(dt, p.rng)
		p.ouTc.step(dt, p.rng)
		p.ouTcwR.step(dt, p.rng)
		p.ouTcwS.step(dt, p.rng)
		p.ouKin.step(dt, p.rng)
		p.ouSteam.step(dt, p.rng)
		p.ouComp.step(dt, p.rng)
		if p.idv[7] { // IDV(8)
			p.xA4Extra.step(dt, p.rng)
			p.xB4Extra.step(dt, p.rng)
		}
		if p.idv[8] {
			p.tdExtra.step(dt, p.rng)
		}
		if p.idv[9] {
			p.tcExtra.step(dt, p.rng)
		}
		if p.idv[10] {
			p.tcwRExtra.step(dt, p.rng)
		}
		if p.idv[11] {
			p.tcwSExtra.step(dt, p.rng)
		}
		if p.idv[12] {
			p.kinExtra.step(dt, p.rng)
		}
		if p.idv[15] {
			p.steamExtra.step(dt, p.rng)
		}
		if p.idv[19] {
			p.compExtra.step(dt, p.rng)
		}
	}
	if p.idv[16] { // IDV(17): reactor heat-transfer fouling drift
		p.foulR = math.Max(0.7, p.foulR-0.01*dt)
	}
	if p.idv[17] { // IDV(18): condenser fouling drift
		p.foulS = math.Max(0.7, p.foulS-0.01*dt)
	}

	// 2. Valve dynamics (stiction then lag).
	var pos [NumXMV]float64
	for i := 0; i < NumXMV; i++ {
		target := p.cmd[i]
		switch {
		case i == XmvReactorCW && p.idv[13]: // IDV(14)
			p.stick[i].band = 2.0
			target = p.stick[i].apply(target)
		case i == XmvCondCW && p.idv[14]: // IDV(15)
			p.stick[i].band = 2.0
			target = p.stick[i].apply(target)
		case i == XmvRecycle && p.idv[18]: // IDV(19)
			p.stick[i].band = 2.0
			target = p.stick[i].apply(target)
		}
		pos[i] = p.valve[i].step(target, dt)
	}

	// 3. Stream 4 composition and disturbance multipliers.
	xA4 := p.ouXA4.value()
	xB4 := p.ouXB4.value()
	if p.idv[0] { // IDV(1): A/C ratio step
		xA4 -= 0.03
	}
	if p.idv[1] { // IDV(2): B step
		xB4 += 0.018
	}
	if p.idv[7] {
		xA4 += p.xA4Extra.value()
		xB4 += p.xB4Extra.value()
	}
	xA4 = clamp(xA4, 0, 1)
	xB4 = clamp(xB4, 0, 1-xA4)
	xC4 := 1 - xA4 - xB4

	hdrA := p.ouHdrA.value()
	if p.idv[5] { // IDV(6): A feed loss
		hdrA = 0
	}
	hdrC := p.ouHdrC.value()
	if p.idv[6] { // IDV(7): C header pressure loss
		hdrC *= 0.8
	}

	// 4. Feed flows.
	fl := &p.flows
	fl.f1 = f1Max * pos[XmvAFeed] / 100 * hdrA
	fl.f2 = f2Max * pos[XmvDFeed] / 100
	fl.f3 = f3Max * pos[XmvEFeed] / 100
	fl.f4 = f4Max * pos[XmvACFeed] / 100 * hdrC

	// 5. Pressures and recycle/purge.
	fl.pR = p.reactorPressure()
	fl.pS = p.sepPressure()
	fl.f5 = kRec * pos[XmvRecycle] / 100 * fl.pS
	fl.f9 = kPurge * pos[XmvPurge] / 100 * fl.pS

	// Separator gas composition.
	var nSgTot float64
	for c := 0; c < numComp; c++ {
		nSgTot += p.nSg[c]
	}
	var ySep [numComp]float64
	if nSgTot > 1e-9 {
		for c := 0; c < numComp; c++ {
			ySep[c] = p.nSg[c] / nSgTot
		}
	}

	// 6. Stripper overhead (computed from last step's F10 components via
	// the instantaneous strip split below) — assembled with feeds into the
	// reactor inlet.
	steamFac := pos[XmvSteam] / BaseXMV[XmvSteam] * p.ouSteam.value()
	if p.idv[15] {
		steamFac += p.steamExtra.value()
	}
	steamFac = math.Max(0, steamFac)

	// Separator underflow (liquid to stripper).
	fl.lvlS = p.sepLiquidVolume() / vSepLiqCap * 100
	fl.f10Vol = f10Vmax * pos[XmvSepFlow] / 100
	var xSl [numComp]float64
	var nSlTot float64
	for c := 0; c < numComp; c++ {
		nSlTot += p.nSl[c]
	}
	if nSlTot > 1e-9 {
		for c := 0; c < numComp; c++ {
			xSl[c] = p.nSl[c] / nSlTot
		}
	}
	vmSl := compositeVmol(xSl)
	fl.f10Mol = fl.f10Vol / vmSl
	// The underflow cannot exceed the available liquid.
	if maxDraw := nSlTot / math.Max(dt, 1e-9) * 0.5; fl.f10Mol > maxDraw && dt > 0 {
		fl.f10Mol = maxDraw
		fl.f10Vol = fl.f10Mol * vmSl
	}

	// Stripper instantaneous split of the incoming liquid.
	var ovComp, toHold [numComp]float64
	fl.ovMol = 0
	for c := 0; c < numComp; c++ {
		in := fl.f10Mol * xSl[c]
		eff := stripEff[c] * (0.7 + 0.3*steamFac)
		if eff > 1 {
			eff = 1
		}
		if eff < 0 {
			eff = 0
		}
		ovComp[c] = in * eff
		toHold[c] = in * (1 - eff)
		fl.ovMol += ovComp[c]
	}

	// Product flow from stripper holdup.
	fl.lvlSt = p.stripLiquidVolume() / vStripCap * 100
	var xSt [numComp]float64
	var nStTot float64
	for c := 0; c < numComp; c++ {
		nStTot += p.nSt[c]
	}
	if nStTot > 1e-9 {
		for c := 0; c < numComp; c++ {
			xSt[c] = p.nSt[c] / nStTot
		}
	}
	fl.prodComp = xSt
	vmSt := compositeVmol(xSt)
	fl.f11Vol = f11Vmax * pos[XmvStripFlow] / 100
	fl.f11Mol = fl.f11Vol / vmSt
	if maxDraw := nStTot / math.Max(dt, 1e-9) * 0.5; fl.f11Mol > maxDraw && dt > 0 {
		fl.f11Mol = maxDraw
		fl.f11Vol = fl.f11Mol * vmSt
	}

	// 7. Reactor feed: fresh + recycle + stripper overhead.
	var f6Comp [numComp]float64
	f6Comp[CompA] += fl.f1
	f6Comp[CompD] += fl.f2
	f6Comp[CompE] += fl.f3
	f6Comp[CompA] += fl.f4 * xA4
	f6Comp[CompB] += fl.f4 * xB4
	f6Comp[CompC] += fl.f4 * xC4
	for c := 0; c < numComp; c++ {
		f6Comp[c] += fl.f5*ySep[c] + ovComp[c]
	}
	fl.f6 = 0
	for c := 0; c < numComp; c++ {
		fl.f6 += f6Comp[c]
	}
	if fl.f6 > 1e-9 {
		for c := 0; c < numComp; c++ {
			fl.feedComp[c] = f6Comp[c] / fl.f6
		}
	}

	// Mixed feed temperature.
	fresh := fl.f1 + fl.f2 + fl.f3 + fl.f4
	tFresh := tFreshBase
	if fresh > 1e-9 {
		dT := p.ouTd.value() + p.ouTc.value()
		if p.idv[2] { // IDV(3): D feed temperature step
			dT += 5 * fl.f2 / fresh
		}
		if p.idv[8] {
			dT += p.tdExtra.value() * fl.f2 / fresh
		}
		if p.idv[9] {
			dT += p.tcExtra.value() * fl.f4 / fresh
		}
		tFresh += dT
	}
	if fl.f6 > 1e-9 {
		fl.t6 = (fresh*tFresh + fl.f5*p.tS + fl.ovMol*p.tSt) / fl.f6
	} else {
		fl.t6 = tFresh
	}

	// 8. Reaction rates.
	pA, pC, pD, pE := p.partialPressures()
	kin := p.ouKin.value()
	if p.idv[12] {
		kin += p.kinExtra.value()
	}
	fT1 := math.Exp(0.028 * (p.tR - tReactBase))
	fT2 := math.Exp(0.033 * (p.tR - tReactBase))
	fT3 := math.Exp(0.050 * (p.tR - tReactBase))
	fT4 := math.Exp(0.040 * (p.tR - tReactBase))
	r1 := p.rateK[0] * kin * fT1 * math.Pow(pA, expR1A) * math.Pow(pC, expR1C) * math.Pow(pD, expR1D)
	r2 := p.rateK[1] * kin * fT2 * math.Pow(pA, expR2A) * math.Pow(pC, expR2C) * math.Pow(pE, expR2E)
	r3 := p.rateK[2] * kin * fT3 * pA * pE
	r4 := p.rateK[3] * kin * fT4 * pD
	fl.rates = [4]float64{r1, r2, r3, r4}
	fl.rxnHeatNorm = (r1 + 0.9*r2 + 0.3*r3 + 0.2*r4) / (r1Base + 0.9*r2Base + 0.3*r3Base + 0.2*r4Base)

	// 9. Reactor outflow and composition.
	fl.lvlR = p.reactorLiquidVolume() / vReactLiqCap * 100
	fl.f7 = kF7 * math.Max(0, fl.pR-fl.pS)
	var w [numComp]float64
	var wTot float64
	lvlFac := fl.lvlR / 75
	for c := 0; c < numComp; c++ {
		a := alphaVol[c]
		if c >= CompF {
			a *= lvlFac // heavies leave faster at high level: self-regulating
		}
		w[c] = a * math.Max(0, p.nR[c])
		wTot += w[c]
	}
	var x7 [numComp]float64
	if wTot > 1e-9 {
		for c := 0; c < numComp; c++ {
			x7[c] = w[c] / wTot
		}
	}

	// 10. Separator splits of the incoming reactor outflow.
	var toSepGas, toSepLiq [numComp]float64
	for c := 0; c < numComp; c++ {
		sv := svSep[c] + svSepT[c]*(p.tS-tSepBase)
		sv = clamp(sv, 0, 1)
		in := fl.f7 * x7[c]
		toSepGas[c] = in * sv
		toSepLiq[c] = in * (1 - sv)
	}

	// 11. Temperatures.
	coolR := kCoolR * p.foulR * pos[XmvReactorCW] / 100
	tcwR := p.ouTcwR.value()
	if p.idv[3] { // IDV(4)
		tcwR += 5
	}
	if p.idv[10] {
		tcwR += p.tcwRExtra.value()
	}
	tcwS := p.ouTcwS.value()
	if p.idv[4] { // IDV(5)
		tcwS += 5
	}
	if p.idv[11] {
		tcwS += p.tcwSExtra.value()
	}
	dTr := heatRx*fl.rxnHeatNorm - coolR*(p.tR-tcwR) + kFeedR*(fl.f6/1890)*(fl.t6-p.tR)
	dTs := kInSep*(fl.f7/1473)*(p.tR-p.tS) - kCoolS*p.foulS*pos[XmvCondCW]/100*(p.tS-tcwS)
	dTst := kSteamStr*pos[XmvSteam]/100*(tSteam-p.tSt) +
		kInStr*(fl.f10Mol/258)*(p.tS-p.tSt) -
		kLossStr*(p.tSt-tAmbient)

	// 12. Measurement-side diagnostics.
	const ovBase = 92.0 // nominal stripper overhead [kmol/h]
	fl.pSt = 3102.2 + 60*(fl.ovMol/ovBase-1) + 40*(steamFac-1) + 0.5*(fl.pS-2633.7)
	comp := p.ouComp.value()
	if p.idv[19] {
		comp += p.compExtra.value()
	}
	fl.compWork = 341.43 * (fl.f5 / 1200) * math.Pow(2633.7/math.Max(fl.pS, 100), 0.25) * comp
	loadR := (p.tR - tcwR) / 85.4
	fl.cwOutR = tcwR + 59.6*loadR/math.Max(pos[XmvReactorCW]/BaseXMV[XmvReactorCW], 0.05)
	loadS := (p.tS - tcwS) / 45.1
	fl.cwOutS = tcwS + 42.3*loadS/math.Max(pos[XmvCondCW]/BaseXMV[XmvCondCW], 0.05)
	for c := 0; c < numComp; c++ {
		fl.purgeComp[c] = ySep[c]
	}

	// 13. Integrate inventories.
	if dt > 0 {
		nu := [numComp]float64{
			-(r1 + r2 + r3), // A
			0,               // B
			-(r1 + r2),      // C
			-(r1 + 3*r4),    // D
			-(r2 + r3),      // E
			r3 + 2*r4,       // F
			r1,              // G
			r2,              // H
		}
		for c := 0; c < numComp; c++ {
			p.nR[c] += dt * (f6Comp[c] - fl.f7*x7[c] + nu[c])
			if p.nR[c] < 0 {
				p.nR[c] = 0
			}
			out := fl.f5 + fl.f9
			p.nSg[c] += dt * (toSepGas[c] - out*ySep[c])
			if p.nSg[c] < 0 {
				p.nSg[c] = 0
			}
			p.nSl[c] += dt * (toSepLiq[c] - fl.f10Mol*xSl[c])
			if p.nSl[c] < 0 {
				p.nSl[c] = 0
			}
			p.nSt[c] += dt * (toHold[c] - fl.f11Mol*xSt[c])
			if p.nSt[c] < 0 {
				p.nSt[c] = 0
			}
		}
		p.tR += dt * dTr
		p.tS += dt * dTs
		p.tSt += dt * dTst
		p.now += dt
	}

	// 14. Measurements.
	p.updateMeasurements(pos, steamFac, dt)

	// 15. Interlocks.
	if dt > 0 {
		p.checkInterlocks()
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (p *Process) updateMeasurements(pos [NumXMV]float64, steamFac, dt float64) {
	fl := &p.flows
	t := &p.truth
	t[XmeasAFeed] = fl.f1 * kscmhPerKmol
	t[XmeasDFeed] = fl.f2 * molWeight[CompD]
	t[XmeasEFeed] = fl.f3 * molWeight[CompE]
	t[XmeasACFeed] = fl.f4 * kscmhPerKmol
	t[XmeasRecycle] = fl.f5 * kscmhPerKmol
	t[XmeasReactorFeed] = fl.f6 * kscmhPerKmol
	t[XmeasReactorPress] = fl.pR
	t[XmeasReactorLevel] = fl.lvlR
	t[XmeasReactorTemp] = p.tR
	t[XmeasPurgeRate] = fl.f9 * kscmhPerKmol
	t[XmeasSepTemp] = p.tS
	t[XmeasSepLevel] = fl.lvlS
	t[XmeasSepPress] = fl.pS
	t[XmeasSepUnderflow] = fl.f10Vol
	t[XmeasStripLevel] = fl.lvlSt
	t[XmeasStripPress] = fl.pSt
	t[XmeasStripUnderflw] = fl.f11Vol
	t[XmeasStripTemp] = p.tSt
	t[XmeasSteamFlow] = 230.31 * steamFac
	t[XmeasCompWork] = fl.compWork
	t[XmeasReactorCWTemp] = fl.cwOutR
	t[XmeasSepCWTemp] = fl.cwOutS

	if p.cfg.DiscreteAnalyzers {
		p.stepDiscreteAnalyzers(fl, dt)
		for i := 0; i < 6; i++ {
			t[XmeasFeedA+i] = p.anFeedHold[i]
		}
		for i := 0; i < 8; i++ {
			t[XmeasPurgeA+i] = p.anPurgeHold[i]
		}
		for i := 0; i < 5; i++ {
			t[XmeasProductD+i] = p.anProdHold[i]
		}
	} else {
		// Analyzers with first-order dynamics.
		for i := 0; i < 6; i++ {
			t[XmeasFeedA+i] = p.anFeed[i].step(fl.feedComp[i]*100, dt)
		}
		for i := 0; i < 8; i++ {
			t[XmeasPurgeA+i] = p.anPurge[i].step(fl.purgeComp[i]*100, dt)
		}
		for i := 0; i < 5; i++ {
			t[XmeasProductD+i] = p.anProd[i].step(fl.prodComp[CompD+i]*100, dt)
		}
	}

	if p.cfg.NoMeasurementNoise {
		copy(p.meas[:], t[:])
		return
	}
	for i := 0; i < NumXMEAS; i++ {
		p.meas[i] = t[i] + measNoiseStd[i]*p.rng.NormFloat64()
	}
}

// stepDiscreteAnalyzers advances the sample-and-hold chromatographs: the
// feed and purge analyzers take a reading every 6 minutes, the product
// analyzer every 15, holding the last value in between (Downs & Vogel's
// measurement dead time).
func (p *Process) stepDiscreteAnalyzers(fl *flowsState, dt float64) {
	const (
		fastPeriod = 0.1  // 6 minutes [h]
		slowPeriod = 0.25 // 15 minutes [h]
	)
	sampleFast := func() {
		for i := 0; i < 6; i++ {
			p.anFeedHold[i] = fl.feedComp[i] * 100
		}
		for i := 0; i < 8; i++ {
			p.anPurgeHold[i] = fl.purgeComp[i] * 100
		}
	}
	sampleSlow := func() {
		for i := 0; i < 5; i++ {
			p.anProdHold[i] = fl.prodComp[CompD+i] * 100
		}
	}
	if !p.anHoldPrimed {
		sampleFast()
		sampleSlow()
		p.anFastTimer = fastPeriod
		p.anSlowTimer = slowPeriod
		p.anHoldPrimed = true
		return
	}
	p.anFastTimer -= dt
	if p.anFastTimer <= 0 {
		sampleFast()
		p.anFastTimer += fastPeriod
	}
	p.anSlowTimer -= dt
	if p.anSlowTimer <= 0 {
		sampleSlow()
		p.anSlowTimer += slowPeriod
	}
}

// SetInterlocks enables or disables the safety interlocks. Plants bypass
// interlocks during startup; the closed-loop warmup does the same and
// re-arms them before any experiment begins.
func (p *Process) SetInterlocks(enabled bool) { p.interlocksOff = !enabled }

func (p *Process) checkInterlocks() {
	if p.interlocksOff {
		return
	}
	fl := &p.flows
	switch {
	case fl.pR > 3000:
		p.trip("reactor pressure high (> 3000 kPa)")
	case p.tR > 175:
		p.trip("reactor temperature high (> 175 °C)")
	case fl.lvlR > 140:
		p.trip("reactor level high")
	case fl.lvlR < 2:
		p.trip("reactor level low")
	case fl.lvlS > 140:
		p.trip("separator level high")
	case fl.lvlS < 2:
		p.trip("separator level low")
	case fl.lvlSt > 140:
		p.trip("stripper level high")
	case fl.lvlSt < 2:
		p.trip("stripper liquid level low")
	}
}

func (p *Process) trip(reason string) {
	p.down = true
	p.downReason = reason
}

// SetXMV sets the commanded position of manipulated variable i (0-based)
// to v percent, clamped to [0, 100].
func (p *Process) SetXMV(i int, v float64) error {
	if i < 0 || i >= NumXMV {
		return fmt.Errorf("te: XMV %d: %w", i, ErrBadIndex)
	}
	p.cmd[i] = clamp(v, 0, 100)
	return nil
}

// XMV returns the currently commanded position of manipulated variable i.
func (p *Process) XMV(i int) float64 {
	if i < 0 || i >= NumXMV {
		return math.NaN()
	}
	return p.cmd[i]
}

// XMVs returns a copy of all commanded positions.
func (p *Process) XMVs() []float64 {
	out := make([]float64, NumXMV)
	copy(out, p.cmd[:])
	return out
}

// Measurements returns a copy of the current (noisy) XMEAS vector, sampled
// once per Step.
func (p *Process) Measurements() []float64 {
	return p.MeasurementsInto(nil)
}

// MeasurementsInto copies the current (noisy) XMEAS vector into dst when
// its capacity suffices, otherwise into a fresh slice — the
// allocation-free path for per-step control loops. It returns the filled
// slice.
func (p *Process) MeasurementsInto(dst []float64) []float64 {
	if cap(dst) >= NumXMEAS {
		dst = dst[:NumXMEAS]
	} else {
		dst = make([]float64, NumXMEAS)
	}
	copy(dst, p.meas[:])
	return dst
}

// TrueMeasurements returns a copy of the noiseless XMEAS vector.
func (p *Process) TrueMeasurements() []float64 {
	out := make([]float64, NumXMEAS)
	copy(out, p.truth[:])
	return out
}

// SetIDV switches process disturbance i (0-based: SetIDV(5,…) is IDV(6))
// on or off.
func (p *Process) SetIDV(i int, on bool) error {
	if i < 0 || i >= NumIDV {
		return fmt.Errorf("te: IDV %d: %w", i, ErrBadIndex)
	}
	p.idv[i] = on
	return nil
}

// IDV reports whether disturbance i is active.
func (p *Process) IDV(i int) bool {
	if i < 0 || i >= NumIDV {
		return false
	}
	return p.idv[i]
}

// Hours returns the simulated time in hours.
func (p *Process) Hours() float64 { return p.now }

// StepSeconds returns the sampling interval in seconds.
func (p *Process) StepSeconds() float64 { return p.cfg.StepSeconds }

// Shutdown reports whether a safety interlock has tripped.
func (p *Process) Shutdown() bool { return p.down }

// ShutdownReason returns the interlock message, or "" when running.
func (p *Process) ShutdownReason() string { return p.downReason }

// Clone returns a deep copy of the process reseeded with seed, with the
// simulation clock reset to zero. Cloning a warmed-up plant gives every
// experiment run an identical, settled starting state with independent
// noise.
func (p *Process) Clone(seed int64) *Process {
	q := *p
	q.rng = rand.New(rand.NewSource(seed))
	q.now = 0
	q.cfg.Seed = seed
	// Deep-copy the pointer-held noise states.
	cpOU := func(o *ou) *ou { c := *o; return &c }
	q.ouHdrA, q.ouHdrC = cpOU(p.ouHdrA), cpOU(p.ouHdrC)
	q.ouXA4, q.ouXB4 = cpOU(p.ouXA4), cpOU(p.ouXB4)
	q.ouTd, q.ouTc = cpOU(p.ouTd), cpOU(p.ouTc)
	q.ouTcwR, q.ouTcwS = cpOU(p.ouTcwR), cpOU(p.ouTcwS)
	q.ouKin, q.ouSteam = cpOU(p.ouKin), cpOU(p.ouSteam)
	q.ouComp = cpOU(p.ouComp)
	q.xA4Extra, q.xB4Extra = cpOU(p.xA4Extra), cpOU(p.xB4Extra)
	q.tdExtra, q.tcExtra = cpOU(p.tdExtra), cpOU(p.tcExtra)
	q.tcwRExtra, q.tcwSExtra = cpOU(p.tcwRExtra), cpOU(p.tcwSExtra)
	q.kinExtra = cpOU(p.kinExtra)
	q.steamExtra = cpOU(p.steamExtra)
	q.compExtra = cpOU(p.compExtra)
	return &q
}

// Debug returns internal diagnostics for development tooling: reaction
// rates [r1..r4] in kmol/h, the reactor component holdups [A..H] in kmol,
// the separator gas holdups, and key stream molar flows
// [F6, F7, F5, F9, F10, F11, OV].
func (p *Process) Debug() (rates [4]float64, nR, nSg [8]float64, streams [7]float64) {
	fl := &p.flows
	return p.flows.rates, p.nR, p.nSg,
		[7]float64{fl.f6, fl.f7, fl.f5, fl.f9, fl.f10Mol, fl.f11Mol, fl.ovMol}
}

// EnableNoise toggles process and measurement noise at runtime (used to
// warm up deterministically and then switch noise on).
func (p *Process) EnableNoise(process, measurement bool) {
	p.cfg.NoProcessNoise = !process
	p.cfg.NoMeasurementNoise = !measurement
}
