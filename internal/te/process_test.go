package te

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestProcess(t *testing.T, cfg Config) *Process {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewDefaults(t *testing.T) {
	p := newTestProcess(t, Config{})
	if p.StepSeconds() != 1.8 {
		t.Errorf("default step = %g, want 1.8", p.StepSeconds())
	}
	if p.Hours() != 0 {
		t.Errorf("initial Hours = %g", p.Hours())
	}
	if p.Shutdown() {
		t.Error("fresh process should not be shut down")
	}
}

func TestNewRejectsBadStep(t *testing.T) {
	if _, err := New(Config{StepSeconds: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative step: want ErrBadConfig, got %v", err)
	}
	if _, err := New(Config{StepSeconds: 61}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("huge step: want ErrBadConfig, got %v", err)
	}
}

func TestMeasurementVectorShape(t *testing.T) {
	p := newTestProcess(t, Config{NoMeasurementNoise: true, NoProcessNoise: true})
	m := p.Measurements()
	if len(m) != NumXMEAS {
		t.Fatalf("measurements len %d, want %d", len(m), NumXMEAS)
	}
	for i, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("XMEAS(%d) = %g", i+1, v)
		}
	}
	// Compositions are percentages in [0,100].
	for i := XmeasFeedA; i <= XmeasProductH; i++ {
		if m[i] < -1e-9 || m[i] > 100+1e-9 {
			t.Errorf("composition %s = %g out of [0,100]", XMEASNames[i], m[i])
		}
	}
}

func TestInitialStateNearBaseTargets(t *testing.T) {
	// The nominal initial state should land within a loose band of the
	// Downs–Vogel base case for the directly-mapped channels.
	p := newTestProcess(t, Config{NoMeasurementNoise: true, NoProcessNoise: true})
	m := p.TrueMeasurements()
	checks := []struct {
		idx int
		tol float64 // relative
	}{
		{XmeasAFeed, 0.1},
		{XmeasDFeed, 0.1},
		{XmeasEFeed, 0.1},
		{XmeasACFeed, 0.1},
		{XmeasReactorPress, 0.05},
		{XmeasReactorTemp, 0.01},
		{XmeasSepTemp, 0.01},
		{XmeasStripTemp, 0.01},
		{XmeasSteamFlow, 0.05},
		{XmeasCompWork, 0.10},
	}
	for _, c := range checks {
		want := BaseXMEASTargets[c.idx]
		got := m[c.idx]
		if math.Abs(got-want) > c.tol*math.Abs(want) {
			t.Errorf("%s = %g, want %g ±%.0f%%", XMEASNames[c.idx], got, want, c.tol*100)
		}
	}
}

func TestMeasurementNoiseStatistics(t *testing.T) {
	// With measurement noise on and the plant frozen-ish (no stepping of
	// inputs), repeated sampling shows per-channel noise near the
	// configured std.
	p := newTestProcess(t, Config{Seed: 3, NoProcessNoise: true})
	const n = 3000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		if err := p.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		v := p.Measurements()[XmeasReactorTemp] - p.TrueMeasurements()[XmeasReactorTemp]
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	want := measNoiseStd[XmeasReactorTemp]
	if math.Abs(mean) > 0.01 {
		t.Errorf("noise mean = %g, want ~0", mean)
	}
	if math.Abs(std-want) > 0.15*want {
		t.Errorf("noise std = %g, want ≈ %g", std, want)
	}
}

func TestSetXMVClampsAndValidates(t *testing.T) {
	p := newTestProcess(t, Config{})
	if err := p.SetXMV(XmvAFeed, 150); err != nil {
		t.Fatal(err)
	}
	if got := p.XMV(XmvAFeed); got != 100 {
		t.Errorf("clamped XMV = %g, want 100", got)
	}
	if err := p.SetXMV(XmvAFeed, -5); err != nil {
		t.Fatal(err)
	}
	if got := p.XMV(XmvAFeed); got != 0 {
		t.Errorf("clamped XMV = %g, want 0", got)
	}
	if err := p.SetXMV(-1, 50); !errors.Is(err, ErrBadIndex) {
		t.Errorf("want ErrBadIndex, got %v", err)
	}
	if err := p.SetXMV(NumXMV, 50); !errors.Is(err, ErrBadIndex) {
		t.Errorf("want ErrBadIndex, got %v", err)
	}
	if !math.IsNaN(p.XMV(99)) {
		t.Error("XMV(99) should be NaN")
	}
}

func TestSetIDVValidates(t *testing.T) {
	p := newTestProcess(t, Config{})
	if err := p.SetIDV(5, true); err != nil {
		t.Fatal(err)
	}
	if !p.IDV(5) {
		t.Error("IDV(6) not set")
	}
	if err := p.SetIDV(20, true); !errors.Is(err, ErrBadIndex) {
		t.Errorf("want ErrBadIndex, got %v", err)
	}
	if p.IDV(99) {
		t.Error("out-of-range IDV should read false")
	}
}

func TestIDV6KillsAFeed(t *testing.T) {
	p := newTestProcess(t, Config{NoMeasurementNoise: true, NoProcessNoise: true})
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	before := p.TrueMeasurements()[XmeasAFeed]
	if before <= 0.1 {
		t.Fatalf("base A feed = %g, expected near 0.25", before)
	}
	if err := p.SetIDV(5, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	after := p.TrueMeasurements()[XmeasAFeed]
	if after > 1e-9 {
		t.Errorf("A feed under IDV(6) = %g, want 0", after)
	}
}

func TestValveLagResponds(t *testing.T) {
	p := newTestProcess(t, Config{NoMeasurementNoise: true, NoProcessNoise: true, StepSeconds: 1.8})
	if err := p.SetXMV(XmvAFeed, 0); err != nil {
		t.Fatal(err)
	}
	// Valve lag is 10 s; after 60 s the flow should be nearly shut.
	for i := 0; i < 34; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f := p.TrueMeasurements()[XmeasAFeed]; f > 0.01 {
		t.Errorf("A feed after closing valve = %g, want ≈ 0", f)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := newTestProcess(t, Config{Seed: 1})
	c1 := p.Clone(7)
	c2 := p.Clone(7)
	c3 := p.Clone(8)
	if c1.Hours() != 0 {
		t.Error("clone clock should reset")
	}
	// Same seed → identical trajectories; different seed → diverging noise.
	for i := 0; i < 50; i++ {
		if err := c1.Step(); err != nil {
			t.Fatal(err)
		}
		if err := c2.Step(); err != nil {
			t.Fatal(err)
		}
		if err := c3.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m1, m2, m3 := c1.Measurements(), c2.Measurements(), c3.Measurements()
	same, diff := true, false
	for i := range m1 {
		if m1[i] != m2[i] {
			same = false
		}
		if m1[i] != m3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same-seed clones diverged")
	}
	if !diff {
		t.Error("different-seed clones identical")
	}
	// The original is untouched by clone stepping.
	if p.Hours() != 0 {
		t.Error("original advanced by clone steps")
	}
}

func TestShutdownLatches(t *testing.T) {
	p := newTestProcess(t, Config{NoMeasurementNoise: true, NoProcessNoise: true, StepSeconds: 9})
	// Close the product valve AND the separator underflow: the separator
	// fills (or stripper drains) until an interlock trips.
	if err := p.SetXMV(XmvStripFlow, 100); err != nil {
		t.Fatal(err)
	}
	if err := p.SetXMV(XmvSepFlow, 0); err != nil {
		t.Fatal(err)
	}
	tripped := false
	for i := 0; i < 20000; i++ {
		if err := p.Step(); err != nil {
			if !errors.Is(err, ErrShutdown) {
				t.Fatalf("unexpected error: %v", err)
			}
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("no interlock trip despite pathological valve positions")
	}
	if !p.Shutdown() || p.ShutdownReason() == "" {
		t.Error("shutdown state not recorded")
	}
	// Subsequent steps keep failing with ErrShutdown.
	if err := p.Step(); !errors.Is(err, ErrShutdown) {
		t.Errorf("want ErrShutdown after trip, got %v", err)
	}
}

func TestEnableNoiseToggle(t *testing.T) {
	p := newTestProcess(t, Config{NoProcessNoise: true, NoMeasurementNoise: true})
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	m1 := p.Measurements()
	t1 := p.TrueMeasurements()
	for i := range m1 {
		if m1[i] != t1[i] {
			t.Fatal("noiseless: Measurements should equal TrueMeasurements")
		}
	}
	p.EnableNoise(true, true)
	if err := p.Step(); err != nil {
		t.Fatal(err)
	}
	m2 := p.Measurements()
	t2 := p.TrueMeasurements()
	differs := false
	for i := range m2 {
		if m2[i] != t2[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("noise enabled but measurements identical to truth")
	}
}

func TestMeasurementsReturnCopies(t *testing.T) {
	p := newTestProcess(t, Config{})
	m := p.Measurements()
	m[0] = 1e9
	if p.Measurements()[0] == 1e9 {
		t.Error("Measurements returned aliasing slice")
	}
	x := p.XMVs()
	x[0] = 1e9
	if p.XMVs()[0] == 1e9 {
		t.Error("XMVs returned aliasing slice")
	}
}

func TestOUProcessStationaryProperty(t *testing.T) {
	// The OU noise stays within ~6σ of its mean over long horizons.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(71))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := newOU(10, 1.0, 0.5)
		for i := 0; i < 20000; i++ {
			v := o.step(0.001, rng)
			if math.Abs(v-10) > 6*0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestOUVarianceMatchesSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := newOU(0, 0.5, 2.0)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := o.step(0.01, rng)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(std-2.0) > 0.15*2.0 {
		t.Errorf("OU stationary std = %g, want ≈ 2", std)
	}
}

func TestLagConverges(t *testing.T) {
	l := newLag(0.1)
	l.force(0)
	for i := 0; i < 1000; i++ {
		l.step(5, 0.01)
	}
	if math.Abs(l.value()-5) > 1e-6 {
		t.Errorf("lag output = %g, want 5", l.value())
	}
	// Zero tau = pass-through.
	l2 := newLag(0)
	l2.force(0)
	if got := l2.step(7, 0.01); got != 7 {
		t.Errorf("zero-tau lag = %g, want 7", got)
	}
}

func TestStictionBand(t *testing.T) {
	s := stiction{band: 2}
	if got := s.apply(10); got != 10 {
		t.Errorf("first apply = %g", got)
	}
	if got := s.apply(11); got != 10 {
		t.Errorf("within band = %g, want stuck at 10", got)
	}
	if got := s.apply(13); got != 13 {
		t.Errorf("beyond band = %g, want 13", got)
	}
}

func TestVarsTablesComplete(t *testing.T) {
	for i, s := range XMEASNames {
		if s == "" {
			t.Errorf("XMEASNames[%d] empty", i)
		}
	}
	for i, s := range XMEASDescriptions {
		if s == "" {
			t.Errorf("XMEASDescriptions[%d] empty", i)
		}
	}
	for i, s := range XMVNames {
		if s == "" {
			t.Errorf("XMVNames[%d] empty", i)
		}
	}
	for i, s := range IDVDescriptions {
		if s == "" {
			t.Errorf("IDVDescriptions[%d] empty", i)
		}
	}
	for i, v := range measNoiseStd {
		if v <= 0 {
			t.Errorf("measNoiseStd[%d] = %g, want > 0", i, v)
		}
	}
	for i, v := range BaseXMV {
		if v <= 0 || v >= 100 {
			t.Errorf("BaseXMV[%d] = %g out of (0,100)", i, v)
		}
	}
}
