package te

import (
	"math"
	"math/rand"
)

// ou is an Ornstein–Uhlenbeck (mean-reverting random walk) process — the
// building block of the "added randomness" model of Krotofil et al.: slow,
// correlated variation of the true process inputs, as opposed to white
// measurement noise. Discretized exactly for a step dt:
//
//	x ← μ + (x−μ)·e^{−dt/τ} + σ·√(1−e^{−2dt/τ})·N(0,1)
type ou struct {
	mean  float64 // long-run mean μ
	tau   float64 // correlation time τ [h]
	sigma float64 // stationary standard deviation σ
	x     float64
}

func newOU(mean, tau, sigma float64) *ou {
	return &ou{mean: mean, tau: tau, sigma: sigma, x: mean}
}

// step advances the process by dt hours using rng and returns the new
// value.
func (o *ou) step(dt float64, rng *rand.Rand) float64 {
	if o.tau <= 0 {
		return o.x
	}
	decay := math.Exp(-dt / o.tau)
	o.x = o.mean + (o.x-o.mean)*decay + o.sigma*math.Sqrt(1-decay*decay)*rng.NormFloat64()
	return o.x
}

// value returns the current value without advancing.
func (o *ou) value() float64 { return o.x }

// reset returns the process to its mean.
func (o *ou) reset() { o.x = o.mean }

// boost multiplies the stationary σ (used when an IDV switches a channel
// from background variation to "random variation" disturbance mode).
func (o *ou) boost(factor float64) { o.sigma *= factor }

// lag is a first-order lag y' = (u−y)/τ, used for valve actuators and
// analyzer dynamics. A zero τ passes the input through.
type lag struct {
	tau float64 // time constant [h]
	y   float64
	set bool
}

func newLag(tau float64) *lag { return &lag{tau: tau} }

// step advances toward u by dt hours and returns the output.
func (l *lag) step(u, dt float64) float64 {
	if !l.set {
		l.y = u
		l.set = true
		return l.y
	}
	if l.tau <= 0 {
		l.y = u
		return l.y
	}
	a := dt / l.tau
	if a > 1 {
		a = 1
	}
	l.y += a * (u - l.y)
	return l.y
}

// value returns the current output.
func (l *lag) value() float64 { return l.y }

// force sets the output directly (used to initialize at the base case).
func (l *lag) force(v float64) { l.y = v; l.set = true }

// stiction models a sticking valve (IDV 14/15/19): the output only moves
// when the command differs from the last moved-to position by more than the
// band, then jumps (Karnopp-style simplification).
type stiction struct {
	band   float64
	pos    float64
	primed bool
}

func (s *stiction) apply(cmd float64) float64 {
	if !s.primed {
		s.pos = cmd
		s.primed = true
		return s.pos
	}
	if s.band <= 0 {
		s.pos = cmd
		return s.pos
	}
	if math.Abs(cmd-s.pos) > s.band {
		s.pos = cmd
	}
	return s.pos
}
