package te

import (
	"math"
	"testing"
)

// stepPair advances a disturbed and an undisturbed process in lockstep for
// the given number of steps and returns both.
func stepPair(t *testing.T, idv int, steps int, noise bool, prep func(p *Process)) (with, without *Process) {
	t.Helper()
	mk := func(enable bool) *Process {
		p, err := New(Config{
			Seed:               9,
			StepSeconds:        4.5,
			NoProcessNoise:     !noise,
			NoMeasurementNoise: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prep != nil {
			prep(p)
		}
		if enable {
			if err := p.SetIDV(idv, true); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < steps; i++ {
			if err := p.Step(); err != nil {
				t.Fatalf("IDV(%d) step %d: %v", idv+1, i, err)
			}
		}
		return p
	}
	return mk(true), mk(false)
}

// channelSeries runs a process for steps and collects one true-measurement
// channel.
func channelSeries(t *testing.T, idv int, channel, steps int) (with, without []float64) {
	t.Helper()
	collect := func(enable bool) []float64 {
		p, err := New(Config{Seed: 9, StepSeconds: 4.5, NoMeasurementNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			if err := p.SetIDV(idv, true); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, steps)
		for i := 0; i < steps; i++ {
			if err := p.Step(); err != nil {
				t.Fatalf("IDV(%d) step %d: %v", idv+1, i, err)
			}
			out[i] = p.TrueMeasurements()[channel]
		}
		return out
	}
	return collect(true), collect(false)
}

func variance(xs []float64) float64 {
	var sum, sumSq float64
	for _, v := range xs {
		sum += v
		sumSq += v * v
	}
	n := float64(len(xs))
	mean := sum / n
	return sumSq/n - mean*mean
}

// TestIDVStepEffects checks the deterministic (step-type) disturbances
// against their documented direct effect.
func TestIDVStepEffects(t *testing.T) {
	const steps = 800 // 1 h at 4.5 s
	tests := []struct {
		name    string
		idv     int // 0-based
		channel int
		// direction: +1 the channel must increase vs NOC, −1 decrease.
		direction float64
		minDelta  float64
	}{
		{"IDV(1) A/C ratio step lowers feed %A", 0, XmeasFeedA, -1, 0.3},
		{"IDV(2) B step raises feed %B", 1, XmeasFeedB, +1, 0.3},
		{"IDV(4) reactor CW inlet step raises CW outlet", 3, XmeasReactorCWTemp, +1, 1.0},
		{"IDV(5) condenser CW inlet step raises CW outlet", 4, XmeasSepCWTemp, +1, 1.0},
		{"IDV(6) A feed loss kills XMEAS(1)", 5, XmeasAFeed, -1, 0.2},
		{"IDV(7) C header pressure loss cuts stream 4", 6, XmeasACFeed, -1, 1.0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			with, without := stepPair(t, tc.idv, steps, false, nil)
			w := with.TrueMeasurements()[tc.channel]
			wo := without.TrueMeasurements()[tc.channel]
			delta := (w - wo) * tc.direction
			if delta < tc.minDelta {
				t.Errorf("channel %s: with=%g without=%g, want signed delta ≥ %g",
					XMEASNames[tc.channel], w, wo, tc.minDelta)
			}
		})
	}
}

// TestIDVRandomVariationEffects checks that the random-variation IDVs
// inflate the variance of their target channel.
func TestIDVRandomVariationEffects(t *testing.T) {
	const steps = 2400 // 3 h at 4.5 s
	tests := []struct {
		name    string
		idv     int
		channel int
		factor  float64 // required variance inflation
	}{
		{"IDV(8) feed composition variation inflates feed %A variance", 7, XmeasFeedA, 2},
		{"IDV(11) reactor CW inlet variation inflates CW outlet variance", 10, XmeasReactorCWTemp, 2},
		{"IDV(12) condenser CW inlet variation inflates CW outlet variance", 11, XmeasSepCWTemp, 2},
		{"IDV(16) steam header variation inflates steam flow variance", 15, XmeasSteamFlow, 2},
		{"IDV(20) compressor variation inflates work variance", 19, XmeasCompWork, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			with, without := channelSeries(t, tc.idv, tc.channel, steps)
			vw, vo := variance(with), variance(without)
			if vw < tc.factor*vo {
				t.Errorf("variance with IDV = %g, without = %g; want ≥ ×%g", vw, vo, tc.factor)
			}
		})
	}
}

// TestIDVTemperatureVariations: IDV(9)/IDV(10) act through the mixed feed
// temperature; their effect shows up as extra reactor-temperature motion.
func TestIDVTemperatureVariations(t *testing.T) {
	const steps = 2400
	for _, tc := range []struct {
		name string
		idv  int
	}{
		{"IDV(9) D feed temperature variation", 8},
		{"IDV(10) C feed temperature variation", 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			with, without := channelSeries(t, tc.idv, XmeasReactorTemp, steps)
			// The open-loop reactor temperature drifts in both runs; the
			// disturbed run must deviate measurably from the undisturbed
			// trajectory.
			var dev float64
			for i := range with {
				dev = math.Max(dev, math.Abs(with[i]-without[i]))
			}
			if dev < 0.02 {
				t.Errorf("max trajectory deviation %g °C, want ≥ 0.02", dev)
			}
		})
	}
}

// TestIDV13KineticsDrift: slow kinetics drift moves the reaction heat and
// with it pressure/temperature over hours.
func TestIDV13KineticsDrift(t *testing.T) {
	const steps = 4800 // 6 h
	with, without := channelSeries(t, 12, XmeasReactorPress, steps)
	var dev float64
	for i := range with {
		dev = math.Max(dev, math.Abs(with[i]-without[i]))
	}
	if dev < 5 {
		t.Errorf("max pressure deviation %g kPa over 6 h, want ≥ 5", dev)
	}
}

// TestIDVValveSticking: the stiction IDVs freeze small commanded moves.
func TestIDVValveSticking(t *testing.T) {
	tests := []struct {
		name    string
		idv     int
		xmv     int
		channel int
	}{
		{"IDV(14) reactor CW valve sticks", 13, XmvReactorCW, XmeasReactorCWTemp},
		{"IDV(15) condenser CW valve sticks", 14, XmvCondCW, XmeasSepCWTemp},
		{"IDV(19) recycle valve sticks", 18, XmvRecycle, XmeasRecycle},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			// Command a sub-band move (±1 % < the 2 % stiction band): the
			// sticking valve must not respond; the healthy one must.
			run := func(enable bool) float64 {
				p, err := New(Config{Seed: 9, StepSeconds: 4.5, NoProcessNoise: true, NoMeasurementNoise: true})
				if err != nil {
					t.Fatal(err)
				}
				if enable {
					if err := p.SetIDV(tc.idv, true); err != nil {
						t.Fatal(err)
					}
				}
				// Prime, then command a +1 % move and settle.
				for i := 0; i < 50; i++ {
					if err := p.Step(); err != nil {
						t.Fatal(err)
					}
				}
				base := p.TrueMeasurements()[tc.channel]
				if err := p.SetXMV(tc.xmv, BaseXMV[tc.xmv]+1.0); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 100; i++ {
					if err := p.Step(); err != nil {
						t.Fatal(err)
					}
				}
				return math.Abs(p.TrueMeasurements()[tc.channel] - base)
			}
			respSticking := run(true)
			respHealthy := run(false)
			if respHealthy <= 0 {
				t.Fatalf("healthy valve produced no response")
			}
			if respSticking > 0.5*respHealthy {
				t.Errorf("sticking valve responded %.3g vs healthy %.3g; want suppressed", respSticking, respHealthy)
			}
		})
	}
}

// TestIDVFoulingDrifts: IDV(17)/IDV(18) degrade heat transfer, so the
// affected temperature rises relative to NOC at fixed valve positions.
func TestIDVFoulingDrifts(t *testing.T) {
	const steps = 6400 // 8 h: fouling drifts at 1 %/h
	tests := []struct {
		name    string
		idv     int
		channel int
	}{
		{"IDV(17) reactor fouling raises reactor temperature", 16, XmeasReactorTemp},
		{"IDV(18) condenser fouling raises separator temperature", 17, XmeasSepTemp},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			with, without := channelSeries(t, tc.idv, tc.channel, steps)
			last := len(with) - 1
			if with[last] <= without[last] {
				t.Errorf("temperature with fouling %g ≤ without %g", with[last], without[last])
			}
		})
	}
}

// TestIDV3DFeedTempStep: the D feed temperature step perturbs the reactor
// temperature trajectory.
func TestIDV3DFeedTempStep(t *testing.T) {
	const steps = 1600
	with, without := channelSeries(t, 2, XmeasReactorTemp, steps)
	var dev float64
	for i := range with {
		dev = math.Max(dev, math.Abs(with[i]-without[i]))
	}
	if dev < 0.02 {
		t.Errorf("max reactor temperature deviation %g °C, want ≥ 0.02", dev)
	}
}
