package te

import (
	"testing"
)

// TestDiscreteAnalyzersHoldBetweenSamples: in DiscreteAnalyzers mode the
// composition measurements are piecewise constant with the documented
// periods, while the continuous mode moves every step.
func TestDiscreteAnalyzersHoldBetweenSamples(t *testing.T) {
	p := newTestProcess(t, Config{
		NoMeasurementNoise: true,
		StepSeconds:        4.5,
		DiscreteAnalyzers:  true,
		Seed:               5,
	})
	// Perturb the plant so compositions genuinely move; this is an
	// open-loop run (no controller), so bypass the interlocks that a
	// drifting plant would otherwise trip.
	p.SetInterlocks(false)
	if err := p.SetIDV(0, true); err != nil { // IDV(1): feed ratio step
		t.Fatal(err)
	}
	const stepsPerFast = 80 // 6 min at 4.5 s
	var feedChanges, prodChanges int
	prevFeed := -1.0
	prevProd := -1.0
	const n = 3 * 60 * 60 / 4.5 // 3 h
	for i := 0; i < int(n); i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		m := p.TrueMeasurements()
		if prevFeed >= 0 && m[XmeasFeedA] != prevFeed {
			feedChanges++
		}
		if prevProd >= 0 && m[XmeasProductG] != prevProd {
			prodChanges++
		}
		prevFeed = m[XmeasFeedA]
		prevProd = m[XmeasProductG]
	}
	// 3 h = 30 fast periods and 12 slow periods; tolerate ±2.
	if feedChanges < 26 || feedChanges > 32 {
		t.Errorf("feed analyzer changed %d times over 3 h, want ≈30", feedChanges)
	}
	if prodChanges < 10 || prodChanges > 14 {
		t.Errorf("product analyzer changed %d times over 3 h, want ≈12", prodChanges)
	}
	_ = stepsPerFast
}

// TestContinuousAnalyzersMoveEveryStep: the default mode's first-order lag
// output changes continuously under the same disturbance.
func TestContinuousAnalyzersMoveEveryStep(t *testing.T) {
	p := newTestProcess(t, Config{
		NoMeasurementNoise: true,
		StepSeconds:        4.5,
		Seed:               5,
	})
	if err := p.SetIDV(0, true); err != nil {
		t.Fatal(err)
	}
	changes := 0
	prev := -1.0
	for i := 0; i < 200; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		v := p.TrueMeasurements()[XmeasFeedA]
		if prev >= 0 && v != prev {
			changes++
		}
		prev = v
	}
	if changes < 190 {
		t.Errorf("continuous analyzer changed only %d/199 steps", changes)
	}
}

// TestDiscreteAnalyzersPlausibleValues: held values stay within the same
// physical range as the continuous readings.
func TestDiscreteAnalyzersPlausibleValues(t *testing.T) {
	p := newTestProcess(t, Config{NoMeasurementNoise: true, DiscreteAnalyzers: true, StepSeconds: 4.5})
	for i := 0; i < 500; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		m := p.TrueMeasurements()
		for j := XmeasFeedA; j <= XmeasProductH; j++ {
			if m[j] < -1e-9 || m[j] > 100+1e-9 {
				t.Fatalf("step %d: %s = %g out of [0,100]", i, XMEASNames[j], m[j])
			}
		}
	}
}
