// Package te implements a reduced-order, gray-box simulator of the
// Tennessee-Eastman (TE) challenge process (Downs & Vogel 1993) with the
// complete external interface of the original model: 41 measured variables
// (XMEAS), 12 manipulated variables (XMV) and 20 process disturbances
// (IDV), the Downs–Vogel base-case operating point, safety interlocks
// (including the stripper-level-low shutdown the paper relies on), Gaussian
// per-channel measurement noise and the slow process random-walks of
// Krotofil et al.'s added-randomness model.
//
// The internal physics is a deliberate simplification of the 50-state
// Fortran teprob.f (see DESIGN.md §2 for the substitution argument): three
// component-inventory units (reactor, separator, stripper) with the four
// Downs–Vogel reactions, pressure/level/temperature dynamics, valve lags
// and a gas recycle loop. What is preserved — and verified by the tests —
// are the causal chains the paper's evaluation depends on:
//
//   - IDV(6) (A-feed loss) and an integrity attack closing XMV(3) are
//     nearly indistinguishable at the controller: XMEAS(1) collapses and
//     the plant shuts down on low stripper level hours later.
//   - Forging XMEAS(1)=0 makes the feed-flow controller open XMV(3).
//   - Freezing XMV(3) (DoS) leaves the process near its operating point,
//     producing the paper's slow, diffuse detection signature.
package te

// Dimensions of the TE interface.
const (
	NumXMEAS = 41 // measured variables
	NumXMV   = 12 // manipulated variables
	NumIDV   = 20 // process disturbances
)

// Indices (1-based in the TE literature; these constants are 0-based slice
// indices with the conventional names).
const (
	// XMEAS indices.
	XmeasAFeed         = 0  // XMEAS(1)  A feed, stream 1 [kscmh]
	XmeasDFeed         = 1  // XMEAS(2)  D feed, stream 2 [kg/h]
	XmeasEFeed         = 2  // XMEAS(3)  E feed, stream 3 [kg/h]
	XmeasACFeed        = 3  // XMEAS(4)  A+C feed, stream 4 [kscmh]
	XmeasRecycle       = 4  // XMEAS(5)  recycle flow, stream 8 [kscmh]
	XmeasReactorFeed   = 5  // XMEAS(6)  reactor feed rate, stream 6 [kscmh]
	XmeasReactorPress  = 6  // XMEAS(7)  reactor pressure [kPa gauge]
	XmeasReactorLevel  = 7  // XMEAS(8)  reactor level [%]
	XmeasReactorTemp   = 8  // XMEAS(9)  reactor temperature [°C]
	XmeasPurgeRate     = 9  // XMEAS(10) purge rate, stream 9 [kscmh]
	XmeasSepTemp       = 10 // XMEAS(11) separator temperature [°C]
	XmeasSepLevel      = 11 // XMEAS(12) separator level [%]
	XmeasSepPress      = 12 // XMEAS(13) separator pressure [kPa gauge]
	XmeasSepUnderflow  = 13 // XMEAS(14) separator underflow [m³/h]
	XmeasStripLevel    = 14 // XMEAS(15) stripper level [%]
	XmeasStripPress    = 15 // XMEAS(16) stripper pressure [kPa gauge]
	XmeasStripUnderflw = 16 // XMEAS(17) stripper underflow (product) [m³/h]
	XmeasStripTemp     = 17 // XMEAS(18) stripper temperature [°C]
	XmeasSteamFlow     = 18 // XMEAS(19) stripper steam flow [kg/h]
	XmeasCompWork      = 19 // XMEAS(20) compressor work [kW]
	XmeasReactorCWTemp = 20 // XMEAS(21) reactor CW outlet temp [°C]
	XmeasSepCWTemp     = 21 // XMEAS(22) separator CW outlet temp [°C]
	XmeasFeedA         = 22 // XMEAS(23) reactor feed %A [mol%]
	XmeasFeedB         = 23 // XMEAS(24) reactor feed %B
	XmeasFeedC         = 24 // XMEAS(25) reactor feed %C
	XmeasFeedD         = 25 // XMEAS(26) reactor feed %D
	XmeasFeedE         = 26 // XMEAS(27) reactor feed %E
	XmeasFeedF         = 27 // XMEAS(28) reactor feed %F
	XmeasPurgeA        = 28 // XMEAS(29) purge %A
	XmeasPurgeB        = 29 // XMEAS(30) purge %B
	XmeasPurgeC        = 30 // XMEAS(31) purge %C
	XmeasPurgeD        = 31 // XMEAS(32) purge %D
	XmeasPurgeE        = 32 // XMEAS(33) purge %E
	XmeasPurgeF        = 33 // XMEAS(34) purge %F
	XmeasPurgeG        = 34 // XMEAS(35) purge %G
	XmeasPurgeH        = 35 // XMEAS(36) purge %H
	XmeasProductD      = 36 // XMEAS(37) product %D
	XmeasProductE      = 37 // XMEAS(38) product %E
	XmeasProductF      = 38 // XMEAS(39) product %F
	XmeasProductG      = 39 // XMEAS(40) product %G
	XmeasProductH      = 40 // XMEAS(41) product %H

	// XMV indices.
	XmvDFeed     = 0  // XMV(1)  D feed flow valve [%]
	XmvEFeed     = 1  // XMV(2)  E feed flow valve [%]
	XmvAFeed     = 2  // XMV(3)  A feed flow valve [%]
	XmvACFeed    = 3  // XMV(4)  A+C feed flow valve [%]
	XmvRecycle   = 4  // XMV(5)  compressor recycle valve [%]
	XmvPurge     = 5  // XMV(6)  purge valve [%]
	XmvSepFlow   = 6  // XMV(7)  separator liquid flow valve [%]
	XmvStripFlow = 7  // XMV(8)  stripper liquid (product) valve [%]
	XmvSteam     = 8  // XMV(9)  stripper steam valve [%]
	XmvReactorCW = 9  // XMV(10) reactor cooling water valve [%]
	XmvCondCW    = 10 // XMV(11) condenser cooling water valve [%]
	XmvAgitator  = 11 // XMV(12) agitator speed [%]
)

// Component indices A–H (Downs & Vogel nomenclature).
const (
	CompA = iota
	CompB
	CompC
	CompD
	CompE
	CompF
	CompG
	CompH
	numComp
)

// XMEASNames gives the short identifier per measured variable, indexable by
// the Xmeas… constants.
var XMEASNames = [NumXMEAS]string{
	"XMEAS(1)", "XMEAS(2)", "XMEAS(3)", "XMEAS(4)", "XMEAS(5)", "XMEAS(6)",
	"XMEAS(7)", "XMEAS(8)", "XMEAS(9)", "XMEAS(10)", "XMEAS(11)", "XMEAS(12)",
	"XMEAS(13)", "XMEAS(14)", "XMEAS(15)", "XMEAS(16)", "XMEAS(17)", "XMEAS(18)",
	"XMEAS(19)", "XMEAS(20)", "XMEAS(21)", "XMEAS(22)", "XMEAS(23)", "XMEAS(24)",
	"XMEAS(25)", "XMEAS(26)", "XMEAS(27)", "XMEAS(28)", "XMEAS(29)", "XMEAS(30)",
	"XMEAS(31)", "XMEAS(32)", "XMEAS(33)", "XMEAS(34)", "XMEAS(35)", "XMEAS(36)",
	"XMEAS(37)", "XMEAS(38)", "XMEAS(39)", "XMEAS(40)", "XMEAS(41)",
}

// XMEASDescriptions gives the long description and unit per measured
// variable.
var XMEASDescriptions = [NumXMEAS]string{
	"A feed (stream 1) [kscmh]",
	"D feed (stream 2) [kg/h]",
	"E feed (stream 3) [kg/h]",
	"A and C feed (stream 4) [kscmh]",
	"Recycle flow (stream 8) [kscmh]",
	"Reactor feed rate (stream 6) [kscmh]",
	"Reactor pressure [kPa gauge]",
	"Reactor level [%]",
	"Reactor temperature [°C]",
	"Purge rate (stream 9) [kscmh]",
	"Product separator temperature [°C]",
	"Product separator level [%]",
	"Product separator pressure [kPa gauge]",
	"Product separator underflow (stream 10) [m3/h]",
	"Stripper level [%]",
	"Stripper pressure [kPa gauge]",
	"Stripper underflow (stream 11) [m3/h]",
	"Stripper temperature [°C]",
	"Stripper steam flow [kg/h]",
	"Compressor work [kW]",
	"Reactor cooling water outlet temperature [°C]",
	"Separator cooling water outlet temperature [°C]",
	"Reactor feed %A [mol%]",
	"Reactor feed %B [mol%]",
	"Reactor feed %C [mol%]",
	"Reactor feed %D [mol%]",
	"Reactor feed %E [mol%]",
	"Reactor feed %F [mol%]",
	"Purge gas %A [mol%]",
	"Purge gas %B [mol%]",
	"Purge gas %C [mol%]",
	"Purge gas %D [mol%]",
	"Purge gas %E [mol%]",
	"Purge gas %F [mol%]",
	"Purge gas %G [mol%]",
	"Purge gas %H [mol%]",
	"Product %D [mol%]",
	"Product %E [mol%]",
	"Product %F [mol%]",
	"Product %G [mol%]",
	"Product %H [mol%]",
}

// XMVNames gives the short identifier per manipulated variable.
var XMVNames = [NumXMV]string{
	"XMV(1)", "XMV(2)", "XMV(3)", "XMV(4)", "XMV(5)", "XMV(6)",
	"XMV(7)", "XMV(8)", "XMV(9)", "XMV(10)", "XMV(11)", "XMV(12)",
}

// XMVDescriptions gives the long description per manipulated variable.
var XMVDescriptions = [NumXMV]string{
	"D feed flow (stream 2) [%]",
	"E feed flow (stream 3) [%]",
	"A feed flow (stream 1) [%]",
	"A and C feed flow (stream 4) [%]",
	"Compressor recycle valve [%]",
	"Purge valve (stream 9) [%]",
	"Separator pot liquid flow (stream 10) [%]",
	"Stripper liquid product flow (stream 11) [%]",
	"Stripper steam valve [%]",
	"Reactor cooling water flow [%]",
	"Condenser cooling water flow [%]",
	"Agitator speed [%]",
}

// IDVDescriptions gives the nature of each process disturbance. IDVs 16–20
// are "unknown" in Downs & Vogel; the behaviours implemented here are
// documented stand-ins of comparable character.
var IDVDescriptions = [NumIDV]string{
	"A/C feed ratio step in stream 4 (B composition constant)",
	"B composition step in stream 4 (A/C ratio constant)",
	"D feed temperature step (stream 2)",
	"Reactor cooling water inlet temperature step",
	"Condenser cooling water inlet temperature step",
	"A feed loss (stream 1) — step",
	"C header pressure loss, reduced availability (stream 4)",
	"A/B/C feed composition random variation (stream 4)",
	"D feed temperature random variation (stream 2)",
	"C feed temperature random variation (stream 4)",
	"Reactor cooling water inlet temperature random variation",
	"Condenser cooling water inlet temperature random variation",
	"Reaction kinetics slow drift",
	"Reactor cooling water valve sticking",
	"Condenser cooling water valve sticking",
	"Unknown (implemented: stripper steam header random variation)",
	"Unknown (implemented: reactor heat-transfer fouling drift)",
	"Unknown (implemented: condenser heat-transfer fouling drift)",
	"Unknown (implemented: recycle valve sticking)",
	"Unknown (implemented: compressor efficiency random variation)",
}

// BaseXMV is the Downs–Vogel base-case position of each manipulated
// variable [%].
var BaseXMV = [NumXMV]float64{
	63.053, // XMV(1)  D feed
	53.980, // XMV(2)  E feed
	24.644, // XMV(3)  A feed
	61.302, // XMV(4)  A+C feed
	22.210, // XMV(5)  compressor recycle valve
	40.064, // XMV(6)  purge valve
	38.100, // XMV(7)  separator liquid flow
	46.534, // XMV(8)  stripper liquid flow
	47.446, // XMV(9)  steam valve
	41.106, // XMV(10) reactor cooling water
	18.114, // XMV(11) condenser cooling water
	50.000, // XMV(12) agitator
}

// BaseXMEASTargets is the Downs–Vogel base-case value of each measured
// variable. The reduced-order model is initialized near these values and
// its own settled steady state (see Process.BaseXMEAS) is used as the
// operating point; the targets are retained for documentation and
// sanity-check tests.
var BaseXMEASTargets = [NumXMEAS]float64{
	0.25052, // XMEAS(1)
	3664.0,  // XMEAS(2)
	4509.3,  // XMEAS(3)
	9.3477,  // XMEAS(4)
	26.902,  // XMEAS(5)
	42.339,  // XMEAS(6)
	2705.0,  // XMEAS(7)
	75.000,  // XMEAS(8)
	120.40,  // XMEAS(9)
	0.33712, // XMEAS(10)
	80.109,  // XMEAS(11)
	50.000,  // XMEAS(12)
	2633.7,  // XMEAS(13)
	25.160,  // XMEAS(14)
	50.000,  // XMEAS(15)
	3102.2,  // XMEAS(16)
	22.949,  // XMEAS(17)
	65.731,  // XMEAS(18)
	230.31,  // XMEAS(19)
	341.43,  // XMEAS(20)
	94.599,  // XMEAS(21)
	77.297,  // XMEAS(22)
	32.188,  // XMEAS(23)
	8.8933,  // XMEAS(24)
	26.383,  // XMEAS(25)
	6.8820,  // XMEAS(26)
	18.776,  // XMEAS(27)
	1.6567,  // XMEAS(28)
	32.958,  // XMEAS(29)
	13.823,  // XMEAS(30)
	23.978,  // XMEAS(31)
	1.2565,  // XMEAS(32)
	18.579,  // XMEAS(33)
	2.2633,  // XMEAS(34)
	4.8436,  // XMEAS(35)
	2.2986,  // XMEAS(36)
	0.01787, // XMEAS(37)
	0.8357,  // XMEAS(38)
	0.09858, // XMEAS(39)
	53.724,  // XMEAS(40)
	43.828,  // XMEAS(41)
}

// measNoiseStd is the measurement-noise standard deviation per XMEAS
// channel, patterned on the Downs–Vogel xns vector: sub-percent noise on
// flows and pressures, fractions of a degree on temperatures, half a
// percent on levels, tenths of a mol% on analyzers.
var measNoiseStd = [NumXMEAS]float64{
	0.0012, // XMEAS(1) kscmh
	18.0,   // XMEAS(2) kg/h
	22.0,   // XMEAS(3) kg/h
	0.047,  // XMEAS(4) kscmh
	0.13,   // XMEAS(5) kscmh
	0.21,   // XMEAS(6) kscmh
	5.0,    // XMEAS(7) kPa
	0.50,   // XMEAS(8) %
	0.05,   // XMEAS(9) °C
	0.0017, // XMEAS(10) kscmh
	0.08,   // XMEAS(11) °C
	0.50,   // XMEAS(12) %
	5.0,    // XMEAS(13) kPa
	0.25,   // XMEAS(14) m3/h
	0.50,   // XMEAS(15) %
	5.0,    // XMEAS(16) kPa
	0.23,   // XMEAS(17) m3/h
	0.07,   // XMEAS(18) °C
	2.3,    // XMEAS(19) kg/h
	1.7,    // XMEAS(20) kW
	0.10,   // XMEAS(21) °C
	0.10,   // XMEAS(22) °C
	0.25,   // XMEAS(23) mol%
	0.10,   // XMEAS(24)
	0.20,   // XMEAS(25)
	0.10,   // XMEAS(26)
	0.15,   // XMEAS(27)
	0.05,   // XMEAS(28)
	0.25,   // XMEAS(29)
	0.12,   // XMEAS(30)
	0.20,   // XMEAS(31)
	0.04,   // XMEAS(32)
	0.15,   // XMEAS(33)
	0.06,   // XMEAS(34)
	0.08,   // XMEAS(35)
	0.05,   // XMEAS(36)
	0.01,   // XMEAS(37)
	0.03,   // XMEAS(38)
	0.01,   // XMEAS(39)
	0.25,   // XMEAS(40)
	0.25,   // XMEAS(41)
}
