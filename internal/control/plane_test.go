package control

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pcsmon"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
)

// writeSyntheticCal writes a CSV of n correlated 53-variable NOC
// observations — the calibration fixture (mirrors the mspctool test
// helper; it lives in package main and cannot be imported).
func writeSyntheticCal(t *testing.T, path string, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := dataset.New(historian.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	m := historian.NumVars
	w := make([]float64, m)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*w[j] + 0.3*rng.NormFloat64()
		}
		if err := d.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

// calLoadings reproduces the writeSyntheticCal(seed 3) population's
// loading vector, so frame streams share the calibration's correlation
// structure and stay in control until deliberately perturbed.
func calLoadings() []float64 {
	wrng := rand.New(rand.NewSource(3))
	w := make([]float64, historian.NumVars)
	for j := range w {
		w[j] = wrng.NormFloat64()
	}
	return w
}

// syntheticFrames generates rows two-view observation frames for one
// unit drawn from the writeSyntheticCal population: the controller view
// and process view agree except that channel 0 diverges in opposite
// directions from row divergeFrom on (-1 = stay in control) — the
// cross-view integrity signature. seed varies only the noise draw; the
// loadings match the calibration population.
func syntheticFrames(unit uint8, seed int64, rows, divergeFrom int) []*fieldbus.Frame {
	rng := rand.New(rand.NewSource(seed))
	m := historian.NumVars
	w := calLoadings()
	out := make([]*fieldbus.Frame, 0, 2*rows)
	for i := 0; i < rows; i++ {
		z := rng.NormFloat64()
		ctrl := make([]float64, m)
		for j := 0; j < m; j++ {
			ctrl[j] = 50 + z*w[j] + 0.3*rng.NormFloat64()
		}
		proc := append([]float64(nil), ctrl...)
		if divergeFrom >= 0 && i >= divergeFrom {
			ctrl[0] -= 30
			proc[0] += 30
		}
		out = append(out,
			&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: unit, Seq: uint64(i + 1), Values: ctrl},
			&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: unit, Seq: uint64(i + 1), Values: proc})
	}
	return out
}

// testPlaneConfig builds a runnable config over a fresh synthetic
// calibration file: loopback listeners, age flushing off so the frame
// accounting is exact.
func testPlaneConfig(t *testing.T, dir string) *Config {
	t.Helper()
	cal := filepath.Join(dir, "cal.csv")
	writeSyntheticCal(t, cal, 3, 800)
	return &Config{
		Calibration:   cal,
		SampleSeconds: 9,
		Listeners:     Listeners{TCP: "127.0.0.1:0"},
		Ops:           Ops{Addr: "127.0.0.1:0"},
		Pairing:       Pairing{TimeoutSeconds: -1},
	}
}

func mustJSON(t *testing.T, r io.Reader, into any) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(into); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// do issues one authed API request and returns the response.
func do(t *testing.T, method, url, token string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPlaneLifecycleHTTP is the control plane's single-process e2e: live
// ingest, the full mutating API (attach conflict, detach + re-attach
// mid-stream, per-unit drain), config introspection and reload, the SSE
// event stream, and a lossless full drain that seals the capture tail.
func TestPlaneLifecycleHTTP(t *testing.T) {
	dir := t.TempDir()
	cfg := testPlaneConfig(t, dir)
	cfg.Ops.AuthToken = "sesame"
	cfg.Record = Record{
		Path:         filepath.Join(dir, "rec", "plant"),
		SegmentBytes: 64 << 10, // force at least one rotation
		FlushSeconds: -1,
	}
	if err := os.MkdirAll(filepath.Dir(cfg.Record.Path), 0o755); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	p, err := New(cfg, Options{Out: &logBuf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()
	base := p.OpsURL()

	// Subscribe to /events before any traffic so the stream sees the
	// lifecycle from the start.
	type sse struct{ event, data string }
	events := make(chan sse, 256)
	sseResp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer func() { _ = sseResp.Body.Close() }()
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		sc := bufio.NewScanner(sseResp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.event != "":
				events <- cur
				cur = sse{}
			}
		}
	}()
	waitEvent := func(typ string) sse {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev := <-events:
				if ev.event == typ {
					return ev
				}
			case <-deadline:
				t.Fatalf("event %q never arrived\nlog:\n%s", typ, logBuf.String())
			}
		}
	}

	const rows = 260
	unit0 := syntheticFrames(0, 21, rows, -1)  // in control throughout
	unit1 := syntheticFrames(1, 22, rows, 130) // integrity divergence mid-stream

	// Interleave the two units like a live bus would.
	for i := 0; i < len(unit0); i++ {
		if err := p.Ingest(unit0[i]); err != nil {
			t.Fatalf("ingest unit0: %v", err)
		}
		if err := p.Ingest(unit1[i]); err != nil {
			t.Fatalf("ingest unit1: %v", err)
		}
	}
	waitEvent("attached")

	// GET /units/{id}: live health for an attached unit, 404 for a unit
	// never seen.
	resp := do(t, http.MethodGet, base+"/units/unit-000", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /units/unit-000 = %d", resp.StatusCode)
	}
	var unitDoc struct {
		Unit   string `json:"unit"`
		Health *struct {
			Observations uint64 `json:"observations"`
		} `json:"health"`
	}
	mustJSON(t, resp.Body, &unitDoc)
	_ = resp.Body.Close()
	if unitDoc.Unit != "unit-000" || unitDoc.Health == nil {
		t.Errorf("unit doc = %+v, want live health", unitDoc)
	}
	if resp := do(t, http.MethodGet, base+"/units/unit-250", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown unit = %d, want 404", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	if resp := do(t, http.MethodGet, base+"/units/boiler", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad unit id = %d, want 400", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}

	// Mutations demand the bearer token; attach of an attached unit is 409.
	if resp := do(t, http.MethodPost, base+"/units/0/attach", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated attach = %d, want 401", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	if resp := do(t, http.MethodPost, base+"/units/0/attach", "sesame", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate attach = %d, want 409", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}

	// GET /config serves the live document with the token masked.
	resp = do(t, http.MethodGet, base+"/config", "", nil)
	var gotCfg Config
	mustJSON(t, resp.Body, &gotCfg)
	_ = resp.Body.Close()
	if gotCfg.Ops.AuthToken != "[redacted]" {
		t.Errorf("GET /config auth_token = %q, want masked", gotCfg.Ops.AuthToken)
	}
	if gotCfg.Calibration != cfg.Calibration {
		t.Errorf("GET /config calibration = %q", gotCfg.Calibration)
	}

	// POST /reload: a frozen-field change is refused with 409 and nothing
	// applied; a reloadable change lands.
	frozen := *cfg
	frozen.Fleet.Workers = 2
	body, _ := json.Marshal(&frozen)
	if resp := do(t, http.MethodPost, base+"/reload", "sesame", bytes.NewReader(body)); resp.StatusCode != http.StatusConflict {
		t.Errorf("frozen reload = %d, want 409", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	reloadable := *cfg
	reloadable.Ops.HealthzStallSeconds = 3600
	body, _ = json.Marshal(&reloadable)
	if resp := do(t, http.MethodPost, base+"/reload", "sesame", bytes.NewReader(body)); resp.StatusCode != http.StatusOK {
		t.Errorf("reloadable reload = %d, want 200", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	if got := p.ops.StallAfter(); got != time.Hour {
		t.Errorf("stall horizon after reload = %v, want 1h", got)
	}

	// Drain unit 1: its verdict is served, and residual frames of the
	// drained unit are dropped, not resurrected.
	resp = do(t, http.MethodPost, base+"/units/unit-001/drain", "sesame", nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("drain unit 1 = %d: %s", resp.StatusCode, b)
	}
	var drainDoc struct {
		State   string `json:"state"`
		Verdict string `json:"verdict"`
	}
	mustJSON(t, resp.Body, &drainDoc)
	_ = resp.Body.Close()
	if drainDoc.State != "drained" || drainDoc.Verdict == "" {
		t.Errorf("unit drain doc = %+v", drainDoc)
	}
	waitEvent("drained")
	residual := syntheticFrames(1, 23, 5, -1)
	for _, f := range residual {
		if err := p.Ingest(f); err != nil {
			t.Fatalf("residual ingest: %v", err)
		}
	}
	if got := p.pi.QuiescedDrops(); got != uint64(len(residual)) {
		t.Errorf("quiesced drops = %d, want %d", got, len(residual))
	}
	resp = do(t, http.MethodGet, base+"/units/unit-001", "", nil)
	var afterDrain struct {
		Report *UnitReport `json:"report"`
	}
	mustJSON(t, resp.Body, &afterDrain)
	_ = resp.Body.Close()
	if afterDrain.Report == nil || afterDrain.Report.Verdict != drainDoc.Verdict {
		t.Errorf("unit 1 report after drain = %+v, want verdict %q", afterDrain.Report, drainDoc.Verdict)
	}
	if resp := do(t, http.MethodPost, base+"/units/unit-001/detach", "sesame", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("detach of drained unit = %d, want 404", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}

	// Detach unit 0 mid-stream, then keep sending: it re-attaches on first
	// sight and neither panics nor disturbs the other units.
	if resp := do(t, http.MethodPost, base+"/units/0/detach", "sesame", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("detach unit 0 = %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	waitEvent("detached")
	const extraRows = 40
	reattach := syntheticFrames(0, 24, extraRows, -1)
	for i, f := range reattach {
		f.Seq = uint64(rows + i/2 + 1) // continue unit 0's sequence space
		if err := p.Ingest(f); err != nil {
			t.Fatalf("re-attach ingest: %v", err)
		}
	}
	waitEvent("attached")

	// Attach a brand-new unit explicitly via the API.
	if resp := do(t, http.MethodPost, base+"/units/7/attach", "sesame", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("attach unit 7 = %d, want 200", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}

	// Full drain over HTTP: blocks until every accepted frame is scored.
	resp = do(t, http.MethodPost, base+"/drain", "sesame", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain = %d", resp.StatusCode)
	}
	var fullDrain struct {
		State    string `json:"state"`
		Accepted uint64 `json:"accepted"`
	}
	mustJSON(t, resp.Body, &fullDrain)
	_ = resp.Body.Close()
	select {
	case <-p.Drained():
	case <-time.After(10 * time.Second):
		t.Fatal("Drained() not closed after POST /drain returned")
	}

	// Losslessness: every frame accepted pre-drain became a scored
	// observation (two frames pair into one observation; no age flushing,
	// no dedup, so the arithmetic is exact).
	wantAccepted := uint64(len(unit0) + len(unit1) + len(reattach))
	if fullDrain.Accepted != wantAccepted {
		t.Errorf("accepted = %d, want %d", fullDrain.Accepted, wantAccepted)
	}
	totals := p.totals()
	wantObs := float64(rows + rows + extraRows)
	if got := totals["fleet_observations"]; got != wantObs {
		t.Errorf("fleet_observations = %g, want %g (frame loss across drain)", got, wantObs)
	}
	reports := p.Reports()
	for _, id := range []string{"unit-000", "unit-001", "unit-007"} {
		if _, ok := reports[id]; !ok {
			t.Errorf("no final report for %s after drain (have %v)", id, len(reports))
		}
	}

	// Frames are refused after drain, and so are attaches.
	if err := p.Ingest(unit0[0]); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Ingest err = %v, want ErrDraining", err)
	}
	if resp := do(t, http.MethodPost, base+"/units/9/attach", "sesame", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("post-drain attach = %d, want 409", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}

	// The capture tail is sealed: every segment has its index sidecar.
	segs, err := filepath.Glob(filepath.Join(dir, "rec", "*.pcscap"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("capture segments = %v (err %v), want a rotated chain", segs, err)
	}
	for _, seg := range segs {
		idx := strings.TrimSuffix(seg, ".pcscap") + ".pcsidx"
		if _, err := os.Stat(idx); err != nil {
			t.Errorf("segment %s has no sealed index: %v", filepath.Base(seg), err)
		}
	}

	// The SSE stream observed the lifecycle and was closed by the drain.
	waitEvent("drain")
	waitEvent("verdict")
	select {
	case <-sseDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream not terminated by drain")
	}

	// Drain is idempotent and Close only adds the ops teardown.
	if err := p.Drain(); err != nil {
		t.Errorf("second Drain: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestPlaneTCPIngest drives frames through the plane's TCP listener —
// the wire path — instead of the in-process entry.
func TestPlaneTCPIngest(t *testing.T) {
	cfg := testPlaneConfig(t, t.TempDir())
	var logBuf bytes.Buffer
	p, err := New(cfg, Options{Out: &logBuf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()

	cli, err := fieldbus.Dial(p.tcp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const rows = 80
	for _, f := range syntheticFrames(3, 31, rows, -1) {
		if err := cli.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.Accepted() < 2*rows {
		if time.Now().After(deadline) {
			t.Fatalf("accepted %d of %d frames\n%s", p.Accepted(), 2*rows, logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rep, ok := p.Reports()["unit-003"]
	if !ok {
		t.Fatalf("no report for unit-003\n%s", logBuf.String())
	}
	if rep.Verdict != pcsmon.VerdictNormal.String() {
		t.Errorf("NOC stream verdict = %s (%s)", rep.Verdict, rep.Explanation)
	}
}

// TestPlaneReloadFromFile covers the SIGHUP path: Reload(nil) re-reads
// Options.ConfigPath and applies the per-unit onset overrides live.
func TestPlaneReloadFromFile(t *testing.T) {
	dir := t.TempDir()
	cfg := testPlaneConfig(t, dir)
	path := filepath.Join(dir, "plant.json")
	writeCfg := func(c *Config) {
		t.Helper()
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCfg(cfg)
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(loaded, Options{ConfigPath: path})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()

	if got := p.onsetFor(9); got != -1 {
		t.Fatalf("unit 9 onset before reload = %d, want -1 (inherit)", got)
	}
	next := *loaded
	h := 2.0
	next.Units = map[string]UnitCfg{"unit-009": {OnsetHour: &h}}
	writeCfg(&next)
	if err := p.Reload(nil); err != nil {
		t.Fatalf("Reload(nil): %v", err)
	}
	if got, want := p.onsetFor(9), int(2*3600/9); got != want {
		t.Errorf("unit 9 onset after reload = %d, want %d", got, want)
	}
	// A frozen edit on disk is rejected wholesale.
	frozen := next
	frozen.Listeners.TCP = "127.0.0.1:1"
	writeCfg(&frozen)
	if err := p.Reload(nil); !errors.Is(err, ErrNotReloadable) {
		t.Errorf("frozen file reload = %v, want ErrNotReloadable", err)
	}
	if got, want := p.onsetFor(9), int(2*3600/9); got != want {
		t.Errorf("failed reload clobbered the onset table: %d, want %d", got, want)
	}
}

// TestPlaneScoringHotPathZeroAlloc guards the acceptance criterion that
// mounting the control plane does not put allocations on the scoring hot
// path: once warm, pairing + scoring an observation through a fully
// mounted plane (ops server up, SSE bus idle, no recording) allocates
// nothing. Like the fleet-level variant, each measured batch waits for
// the worker to score it, so row boxes are back in the free-list before
// the next push — burst-mode pool growth is not an allocation of the
// scoring path.
func TestPlaneScoringHotPathZeroAlloc(t *testing.T) {
	cfg := testPlaneConfig(t, t.TempDir())
	const batch = 8
	cfg.Fleet.Workers = 1
	cfg.Fleet.Batch = batch
	cfg.Fleet.FlushEveryMS = -1 // deliver on full batches only
	p, err := New(cfg, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()

	// An in-population row: off-population data would alarm on every
	// observation and the alarm events, not the scoring path, would be
	// measured.
	m := historian.NumVars
	w := calLoadings()
	sens, act := make([]float64, m), make([]float64, m)
	for j := 0; j < m; j++ {
		sens[j] = 50 + 0.4*w[j]
		act[j] = sens[j]
	}
	seq := uint64(1)
	var pushed uint64
	pushBatch := func() {
		for i := 0; i < batch; i++ {
			_ = p.pi.OfferSensor(5, seq, sens)
			_ = p.pi.OfferActuator(5, seq, act)
			seq++
			pushed++
		}
		for p.fl.Stats().Observations < pushed {
			runtime.Gosched()
		}
	}
	// The correlator holds its first reorder window back until the window
	// advances; flush one window of pairs through so every later in-order
	// pair emits (and scores) at offer time — otherwise the wait above
	// never sees the tail of a batch.
	for i := 0; i < 64; i++ {
		_ = p.pi.OfferSensor(5, seq, sens)
		_ = p.pi.OfferActuator(5, seq, act)
		seq++
		pushed++
	}
	if err := p.pi.Flush(); err != nil {
		t.Fatalf("prime flush: %v", err)
	}
	for p.fl.Stats().Observations < pushed {
		runtime.Gosched()
	}
	// Warm every pool and ring buffer well past the run-rule window.
	for i := 0; i < 40; i++ {
		pushBatch()
	}
	avg := testing.AllocsPerRun(100, pushBatch)
	perObs := avg / batch
	if perObs > 0.01 && !raceEnabled {
		t.Errorf("hot path allocates %.3f per observation with the plane mounted, want 0", perObs)
	}
}

// BenchmarkPlaneIngestHotPath measures one paired observation through a
// fully mounted plane — the serve-mode steady state.
func BenchmarkPlaneIngestHotPath(b *testing.B) {
	dir := b.TempDir()
	cal := filepath.Join(dir, "cal.csv")
	writeSyntheticCal(&testing.T{}, cal, 3, 800)
	cfg := &Config{
		Calibration:   cal,
		SampleSeconds: 9,
		Listeners:     Listeners{TCP: "127.0.0.1:0"},
		Ops:           Ops{Addr: "127.0.0.1:0"},
		Pairing:       Pairing{TimeoutSeconds: -1},
	}
	p, err := New(cfg, Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer func() { _ = p.Close() }()
	m := historian.NumVars
	w := calLoadings()
	sens := make([]float64, m)
	for j := 0; j < m; j++ {
		sens[j] = 50 + 0.4*w[j]
	}
	seq := uint64(1)
	for ; seq < 64; seq++ {
		_ = p.pi.OfferSensor(5, seq, sens)
		_ = p.pi.OfferActuator(5, seq, sens)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.pi.OfferSensor(5, seq, sens)
		_ = p.pi.OfferActuator(5, seq, sens)
		seq++
	}
}
