package router

import (
	"errors"
	"testing"

	"pcsmon/internal/fieldbus"
)

func TestOwnerDeterministicAndTotal(t *testing.T) {
	a, err := NewTable("node-a", "node-b", "node-c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTable("node-c", "node-a", "node-b") // joined in another order
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for u := 0; u < 256; u++ {
		oa, ob := a.Owner(uint8(u)), b.Owner(uint8(u))
		if oa == "" {
			t.Fatalf("unit %d unowned", u)
		}
		if oa != ob {
			t.Fatalf("unit %d: owner depends on join order (%q vs %q)", u, oa, ob)
		}
		counts[oa]++
	}
	// Rendezvous over 256 units and 3 nodes should land roughly 85 per
	// node; a node owning fewer than 32 or more than 160 means the hash is
	// broken, not merely unlucky.
	for n, c := range counts {
		if c < 32 || c > 160 {
			t.Errorf("node %s owns %d of 256 units — distribution broken: %v", n, c, counts)
		}
	}
	if got := len(a.Assignments()); got != 256 {
		t.Errorf("Assignments() covers %d units, want 256", got)
	}
}

func TestMembershipChangeMovesMinimally(t *testing.T) {
	tb, err := NewTable("node-a", "node-b")
	if err != nil {
		t.Fatal(err)
	}
	before := tb.Assignments()

	moved, err := tb.Add("node-c")
	if err != nil {
		t.Fatal(err)
	}
	// Every moved unit must now be on the new node, and every unmoved unit
	// must still be where it was: growth never shuffles survivors.
	movedSet := map[uint8]bool{}
	for _, u := range moved {
		movedSet[u] = true
		if got := tb.Owner(u); got != "node-c" {
			t.Errorf("unit %d moved to %q, want node-c", u, got)
		}
	}
	for u := 0; u < 256; u++ {
		if !movedSet[uint8(u)] && tb.Owner(uint8(u)) != before[uint8(u)] {
			t.Errorf("unit %d moved from %q to %q without being reported",
				u, before[uint8(u)], tb.Owner(uint8(u)))
		}
	}
	if len(moved) == 0 || len(moved) > 160 {
		t.Errorf("adding a third node moved %d units, want roughly a third of 256", len(moved))
	}

	// Removing it moves exactly those units back to their previous owners.
	after, err := tb.Remove("node-c")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(moved) {
		t.Errorf("remove moved %d units, add moved %d — should be symmetric", len(after), len(moved))
	}
	for u := 0; u < 256; u++ {
		if tb.Owner(uint8(u)) != before[uint8(u)] {
			t.Errorf("unit %d: %q after add+remove, want original %q", u, tb.Owner(uint8(u)), before[uint8(u)])
		}
	}
}

func TestTableValidation(t *testing.T) {
	tb, _ := NewTable("a")
	if _, err := tb.Add(""); !errors.Is(err, ErrBadNode) {
		t.Errorf("empty node: %v, want ErrBadNode", err)
	}
	if _, err := tb.Add("a"); !errors.Is(err, ErrBadNode) {
		t.Errorf("duplicate node: %v, want ErrBadNode", err)
	}
	if _, err := tb.Remove("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("remove unknown: %v, want ErrUnknownNode", err)
	}
	if o := (&Table{}).Owner(3); o != "" {
		t.Errorf("empty table owner = %q, want \"\"", o)
	}
}

func TestRouterForwardsByOwner(t *testing.T) {
	tb, err := NewTable("left", "right")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]uint8{}
	sink := func(node string) Sink {
		return func(f *fieldbus.Frame) error {
			got[node] = append(got[node], f.Unit)
			return nil
		}
	}
	r, err := NewRouter(tb, map[string]Sink{"left": sink("left"), "right": sink("right")})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 256; u++ {
		f := &fieldbus.Frame{Unit: uint8(u)}
		if err := r.Route(f); err != nil {
			t.Fatalf("unit %d: %v", u, err)
		}
	}
	for node, units := range got {
		for _, u := range units {
			if tb.Owner(u) != node {
				t.Errorf("unit %d delivered to %s, owner is %s", u, node, tb.Owner(u))
			}
		}
	}
	if r.Forwarded() != 256 {
		t.Errorf("Forwarded() = %d, want 256", r.Forwarded())
	}

	// A node without a sink counts unrouted and errors.
	if _, err := tb.Add("ghost"); err != nil {
		t.Fatal(err)
	}
	var routedToGhost bool
	for u := 0; u < 256; u++ {
		if tb.Owner(uint8(u)) == "ghost" {
			routedToGhost = true
			if err := r.Route(&fieldbus.Frame{Unit: uint8(u)}); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("ghost-owned unit %d: %v, want ErrUnknownNode", u, err)
			}
			break
		}
	}
	if routedToGhost && r.Unrouted() == 0 {
		t.Error("Unrouted() = 0 after routing to a sinkless node")
	}
}

func TestRouterValidation(t *testing.T) {
	tb, _ := NewTable("a")
	if _, err := NewRouter(nil, map[string]Sink{"a": func(*fieldbus.Frame) error { return nil }}); !errors.Is(err, ErrBadNode) {
		t.Errorf("nil table: %v", err)
	}
	if _, err := NewRouter(tb, nil); !errors.Is(err, ErrBadNode) {
		t.Errorf("no sinks: %v", err)
	}
	if _, err := NewRouter(tb, map[string]Sink{"a": nil}); !errors.Is(err, ErrBadNode) {
		t.Errorf("nil sink: %v", err)
	}
	r, _ := NewRouter(tb, map[string]Sink{"a": func(*fieldbus.Frame) error { return nil }})
	if err := r.SetSink("", nil); !errors.Is(err, ErrBadNode) {
		t.Errorf("SetSink empty: %v", err)
	}
}
