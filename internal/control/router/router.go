// Package router is the control plane's scale-out seed: a consistent
// unit→node assignment table plus a thin frame forwarder, so N serve
// processes split one fleet of fieldbus units.
//
// The assignment generalizes the FNV shard-by-unit discipline
// internal/fleet uses for workers inside one process to nodes across
// processes, but swaps modulo placement for rendezvous (highest random
// weight) hashing: each (node, unit) pair gets a deterministic FNV-1a
// score and the unit lives on the highest-scoring node. Adding or
// removing a node then moves only the units whose top score changed —
// 1/N of the fleet on average — instead of reshuffling nearly everything
// the way `hash % N` does.
//
// The Table is pure assignment arithmetic (deterministic, no I/O); the
// Router binds a Table to per-node frame sinks so an ingest edge can
// forward each frame to whichever node owns its unit.
package router

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pcsmon/internal/fieldbus"
)

// Sentinel errors.
var (
	// ErrBadNode is returned for empty/duplicate node names or an empty table.
	ErrBadNode = errors.New("router: bad node")
	// ErrUnknownNode is returned when removing or routing to an absent node.
	ErrUnknownNode = errors.New("router: unknown node")
)

// score is the rendezvous weight of (node, unit): FNV-1a over the node
// name followed by the unit byte, pushed through a 64-bit avalanche
// finalizer. Bare FNV-1a is not enough here — node names that differ only
// in a trailing character produce scores whose relative order survives
// the unit mix, so one node would win every unit; the finalizer spreads
// the single-byte difference across all 64 bits. Deterministic across
// processes — every edge computes the same owner without coordination.
func score(node string, unit uint8) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= uint64(unit)
	h *= prime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Table assigns each of the 256 fieldbus units to one named node by
// rendezvous hashing. The zero value is empty; Add nodes to use it. Safe
// for concurrent use.
type Table struct {
	mu    sync.RWMutex
	nodes []string
	owner [256]string // cached owner per unit, rebuilt on membership change
}

// NewTable builds a table over the given nodes.
func NewTable(nodes ...string) (*Table, error) {
	t := &Table{}
	for _, n := range nodes {
		if _, err := t.Add(n); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Nodes lists the member nodes, sorted.
func (t *Table) Nodes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := append([]string(nil), t.nodes...)
	sort.Strings(out)
	return out
}

// Owner returns the node owning a unit, or "" for an empty table.
func (t *Table) Owner(unit uint8) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.owner[unit]
}

// Assignments returns the full unit→node map of the current membership —
// the audit view a two-node deployment compares against its config.
func (t *Table) Assignments() map[uint8]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := make(map[uint8]string, 256)
	for u := 0; u < 256; u++ {
		if t.owner[u] != "" {
			m[uint8(u)] = t.owner[u]
		}
	}
	return m
}

// Add joins a node and returns the units that moved to it — the set the
// operator must drain on their old owners before cutting traffic over.
// Rendezvous hashing guarantees movement is only *onto* the new node.
func (t *Table) Add(node string) ([]uint8, error) {
	if node == "" {
		return nil, fmt.Errorf("empty node name: %w", ErrBadNode)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range t.nodes {
		if n == node {
			return nil, fmt.Errorf("node %q already present: %w", node, ErrBadNode)
		}
	}
	t.nodes = append(t.nodes, node)
	return t.rebuild(), nil
}

// Remove evicts a node and returns the units that moved off it, each now
// owned by its next-highest-scoring survivor. Units on other nodes do not
// move at all.
func (t *Table) Remove(node string) ([]uint8, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.nodes {
		if n == node {
			t.nodes = append(t.nodes[:i], t.nodes[i+1:]...)
			return t.rebuild(), nil
		}
	}
	return nil, fmt.Errorf("node %q: %w", node, ErrUnknownNode)
}

// rebuild recomputes the owner cache under t.mu, returning the units
// whose owner changed.
func (t *Table) rebuild() []uint8 {
	var moved []uint8
	for u := 0; u < 256; u++ {
		best, bestScore := "", uint64(0)
		for _, n := range t.nodes {
			if s := score(n, uint8(u)); best == "" || s > bestScore || (s == bestScore && n < best) {
				best, bestScore = n, s
			}
		}
		if t.owner[u] != best {
			t.owner[u] = best
			moved = append(moved, uint8(u))
		}
	}
	return moved
}

// Sink accepts one frame on behalf of a node — an in-process plane's
// ingest, or a network forwarder in a multi-host deployment.
type Sink func(f *fieldbus.Frame) error

// Router forwards frames to the node owning their unit. Safe for
// concurrent use; sinks must be too.
type Router struct {
	table *Table

	mu    sync.RWMutex
	sinks map[string]Sink

	forwarded atomic.Uint64
	unrouted  atomic.Uint64
}

// NewRouter binds an assignment table to its per-node sinks.
func NewRouter(table *Table, sinks map[string]Sink) (*Router, error) {
	if table == nil || len(sinks) == 0 {
		return nil, fmt.Errorf("router needs a table and at least one sink: %w", ErrBadNode)
	}
	r := &Router{table: table, sinks: make(map[string]Sink, len(sinks))}
	for n, s := range sinks {
		if s == nil {
			return nil, fmt.Errorf("node %q: nil sink: %w", n, ErrBadNode)
		}
		r.sinks[n] = s
	}
	return r, nil
}

// Table returns the router's assignment table (shared, live).
func (r *Router) Table() *Table { return r.table }

// SetSink installs or replaces a node's sink — the membership-change hook
// that accompanies Table.Add/Remove.
func (r *Router) SetSink(node string, s Sink) error {
	if node == "" || s == nil {
		return fmt.Errorf("node %q: %w", node, ErrBadNode)
	}
	r.mu.Lock()
	r.sinks[node] = s
	r.mu.Unlock()
	return nil
}

// Route forwards one frame to the owner of its unit. A frame whose owner
// has no sink (membership changed under us) is counted as unrouted and
// dropped — the caller's retention story, not the router's.
func (r *Router) Route(f *fieldbus.Frame) error {
	owner := r.table.Owner(f.Unit)
	r.mu.RLock()
	sink := r.sinks[owner]
	r.mu.RUnlock()
	if sink == nil {
		r.unrouted.Add(1)
		return fmt.Errorf("unit %d owner %q has no sink: %w", f.Unit, owner, ErrUnknownNode)
	}
	if err := sink(f); err != nil {
		return err
	}
	r.forwarded.Add(1)
	return nil
}

// Forwarded counts frames delivered to a sink; Unrouted counts frames
// whose owner had no sink.
func (r *Router) Forwarded() uint64 { return r.forwarded.Load() }
func (r *Router) Unrouted() uint64  { return r.unrouted.Load() }
