// Package control is the monitor's control plane: the long-lived serve
// mode that turns the flag-driven fleet CLI into a deployable service. It
// owns the typed JSON config file (validated with field-path errors), the
// mutating HTTP/JSON API mounted on the ops listener (attach/detach/drain
// units, config introspection, live reload, an SSE event stream), and the
// graceful lifecycle: SIGTERM or POST /drain stops accepting frames,
// flushes the pairing and fleet pipelines and the capture store's
// unsealed tail, emits final per-unit reports and exits cleanly; SIGHUP
// or POST /reload applies the reloadable config subset in place.
//
// The companion package internal/control/router is the horizontal
// scale-out seed: a rendezvous-hash unit→node table plus a thin frame
// forwarder, so N serve processes split one fleet.
package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pcsmon"
)

// ErrBadConfig wraps every config-file validation failure; errors name
// the offending field path ("pairing.window"). It is the facade's
// sentinel, so callers can errors.Is against either package.
var ErrBadConfig = pcsmon.ErrBadConfig

// Config is the serve-mode configuration file: the typed replacement for
// the fleet subcommand's flag soup. Durations are given in seconds
// (JSON numbers, fractional allowed); zero values select the same
// defaults the flags did.
type Config struct {
	// Calibration is the NOC calibration CSV path (required).
	Calibration string `json:"calibration"`
	// SampleSeconds is the observation interval of the monitored streams
	// (0 = 4.5, the paper's cadence).
	SampleSeconds float64 `json:"sample_seconds,omitempty"`
	// OnsetHour is the hour an anomaly is known to begin, applied to every
	// unit without a per-unit override (0 = unknown).
	OnsetHour float64 `json:"onset_hour,omitempty"`
	// Components is the PCA component count (0 = 90% variance rule).
	Components int `json:"components,omitempty"`

	Listeners Listeners `json:"listeners"`
	Ops       Ops       `json:"ops"`
	Pairing   Pairing   `json:"pairing"`
	Fleet     FleetCfg  `json:"fleet"`
	Adapt     Adapt     `json:"adapt"`
	Record    Record    `json:"record"`

	// Units holds per-unit overrides, keyed by decimal fieldbus unit id
	// ("0".."255"). Reloadable.
	Units map[string]UnitCfg `json:"units,omitempty"`

	// Cluster configures the scale-out router (empty = this process owns
	// every unit).
	Cluster Cluster `json:"cluster"`
}

// Listeners names the ingest sockets. At least one must be set.
type Listeners struct {
	// TCP accepts length-prefixed fieldbus frames ("127.0.0.1:7700").
	TCP string `json:"tcp,omitempty"`
	// UDP accepts one frame per datagram — the lossy transport.
	UDP string `json:"udp,omitempty"`
}

// Ops configures the ops/control HTTP listener.
type Ops struct {
	// Addr is the listen address of the ops + control API server
	// (required: the control plane is the point of serve mode).
	Addr string `json:"addr"`
	// AuthToken, when set, is required as "Authorization: Bearer <token>"
	// on every mutating API request; reads stay open for scrapes.
	AuthToken string `json:"auth_token,omitempty"`
	// HealthzStallSeconds is the idle horizon after which /healthz reports
	// 503 (0 = 60s, negative = probe disabled). Reloadable.
	HealthzStallSeconds float64 `json:"healthz_stall_seconds,omitempty"`
}

// Pairing tunes the sensor/actuator frame correlator.
type Pairing struct {
	// Window is the reorder depth in sequence numbers (0 = 64).
	Window int `json:"window,omitempty"`
	// TimeoutSeconds flushes observations whose mate frame is this late
	// (0 = 2s, negative = never).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// StallAfter is the consecutive one-view orphan count that raises a
	// ViewStalled event (0 = 8, negative = disabled).
	StallAfter int `json:"stall_after,omitempty"`
	// Dedup suppresses content-identical frames within a sliding window of
	// this many frames (redundant collectors; 0 = off).
	Dedup int `json:"dedup,omitempty"`
}

// FleetCfg sizes the scoring pool.
type FleetCfg struct {
	// Workers is the scoring goroutine count (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Mailbox is the per-worker queue depth in messages (0 = 64).
	Mailbox int `json:"mailbox,omitempty"`
	// Batch is the observations aggregated per delivery (0 = 16).
	Batch int `json:"batch,omitempty"`
	// FlushEveryMS is the partial-batch delivery cadence in milliseconds
	// (0 = 2ms, negative = only on full batch or detach).
	FlushEveryMS float64 `json:"flush_every_ms,omitempty"`
	// EventBuffer is the event fan-in depth (0 = 256).
	EventBuffer int `json:"event_buffer,omitempty"`
	// EmitEvery streams one Scored event per N observations per unit onto
	// /events subscribers (0 = none — serve mode defaults to alarms,
	// verdicts and swaps only, so the SSE stream is not a firehose).
	EmitEvery int `json:"emit_every,omitempty"`
}

// Adapt enables fleet-wide adaptive recalibration.
type Adapt struct {
	// Every refits the shared model every N in-control observations
	// (0 = frozen model).
	Every int `json:"every,omitempty"`
	// Forget is the EWMA forget factor in (0,1] (0 = default 0.999;
	// requires Every).
	Forget float64 `json:"forget,omitempty"`
}

// Record configures the durable capture store. Any rotation/retention
// field implies store mode (a rotating segment chain); a bare Path
// records one plain capture file.
type Record struct {
	// Path is the capture file or segment-chain base ("" = no recording).
	Path string `json:"path,omitempty"`
	// SegmentBytes rotates segments at this size (store mode).
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// SegmentSpanSeconds rotates segments at this much capture time.
	SegmentSpanSeconds float64 `json:"segment_span_seconds,omitempty"`
	// Keep bounds the chain to this many segments, oldest pruned.
	Keep int `json:"keep,omitempty"`
	// KeepBytes bounds the chain's total size.
	KeepBytes int64 `json:"keep_bytes,omitempty"`
	// KeepAgeSeconds prunes segments this far behind the newest record.
	KeepAgeSeconds float64 `json:"keep_age_seconds,omitempty"`
	// FlushSeconds is the crash-durability flush cadence (0 = 1s,
	// negative = flush only at the end).
	FlushSeconds float64 `json:"flush_seconds,omitempty"`
}

// UnitCfg is one unit's override block.
type UnitCfg struct {
	// OnsetHour overrides the global onset for this unit (nil = inherit).
	OnsetHour *float64 `json:"onset_hour,omitempty"`
}

// Cluster configures multi-node operation: this process's name and the
// full membership the rendezvous table assigns units over.
type Cluster struct {
	// Node is this process's name (required when Nodes is non-empty).
	Node string `json:"node,omitempty"`
	// Nodes is the full membership; every serve process must list the same
	// set so the unit→node assignment agrees without coordination.
	Nodes []string `json:"nodes,omitempty"`
}

// Load reads and validates a config file.
func Load(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("control: %s: %v: %w", path, err, ErrBadConfig)
	}
	defer func() { _ = f.Close() }()
	cfg, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("control: %s: %w", path, err)
	}
	return cfg, nil
}

// Parse strictly decodes and validates a config document: unknown fields
// are rejected (a typoed knob must not silently no-op) and every
// validation error names its field path and wraps ErrBadConfig.
func Parse(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadConfig)
	}
	// A second document in the same file is a concatenation mistake.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing data after config document: %w", ErrBadConfig)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// badField builds the canonical field-path validation error.
func badField(path string, format string, args ...any) error {
	return fmt.Errorf("%s: %s: %w", path, fmt.Sprintf(format, args...), ErrBadConfig)
}

// Validate checks every field, naming the offending path.
func (c *Config) Validate() error {
	switch {
	case c.Calibration == "":
		return badField("calibration", "required")
	case c.SampleSeconds < 0:
		return badField("sample_seconds", "%g must be >= 0", c.SampleSeconds)
	case c.OnsetHour < 0:
		return badField("onset_hour", "%g must be >= 0", c.OnsetHour)
	case c.Components < 0:
		return badField("components", "%d must be >= 0", c.Components)
	case c.Listeners.TCP == "" && c.Listeners.UDP == "":
		return badField("listeners", "at least one of listeners.tcp / listeners.udp is required")
	case c.Ops.Addr == "":
		return badField("ops.addr", "required (the control API is served there)")
	case c.Pairing.Window < 0:
		return badField("pairing.window", "%d must be >= 0", c.Pairing.Window)
	case c.Pairing.Dedup < 0:
		return badField("pairing.dedup", "%d must be >= 0", c.Pairing.Dedup)
	case c.Fleet.Workers < 0:
		return badField("fleet.workers", "%d must be >= 0", c.Fleet.Workers)
	case c.Fleet.Mailbox < 0:
		return badField("fleet.mailbox", "%d must be >= 0", c.Fleet.Mailbox)
	case c.Fleet.Batch < 0:
		return badField("fleet.batch", "%d must be >= 0", c.Fleet.Batch)
	case c.Fleet.EventBuffer < 0:
		return badField("fleet.event_buffer", "%d must be >= 0", c.Fleet.EventBuffer)
	case c.Fleet.EmitEvery < 0:
		return badField("fleet.emit_every", "%d must be >= 0", c.Fleet.EmitEvery)
	case c.Adapt.Every < 0:
		return badField("adapt.every", "%d must be >= 0", c.Adapt.Every)
	case c.Adapt.Forget != 0 && (c.Adapt.Forget <= 0 || c.Adapt.Forget > 1):
		return badField("adapt.forget", "%g must be in (0,1]", c.Adapt.Forget)
	case c.Adapt.Forget != 0 && c.Adapt.Every == 0:
		return badField("adapt.forget", "requires adapt.every")
	case c.Record.SegmentBytes < 0:
		return badField("record.segment_bytes", "%d must be >= 0", c.Record.SegmentBytes)
	case c.Record.SegmentSpanSeconds < 0:
		return badField("record.segment_span_seconds", "%g must be >= 0", c.Record.SegmentSpanSeconds)
	case c.Record.Keep < 0:
		return badField("record.keep", "%d must be >= 0", c.Record.Keep)
	case c.Record.KeepBytes < 0:
		return badField("record.keep_bytes", "%d must be >= 0", c.Record.KeepBytes)
	case c.Record.KeepAgeSeconds < 0:
		return badField("record.keep_age_seconds", "%g must be >= 0", c.Record.KeepAgeSeconds)
	case c.Record.Path == "" && c.Record.storeMode():
		return badField("record.path", "required when any rotation/retention field is set")
	}
	for key, u := range c.Units {
		path := "units." + key
		if _, err := parseUnitKey(key); err != nil {
			return badField(path, "%v", err)
		}
		if u.OnsetHour != nil && *u.OnsetHour < 0 {
			return badField(path+".onset_hour", "%g must be >= 0", *u.OnsetHour)
		}
	}
	if err := c.Cluster.validate(); err != nil {
		return err
	}
	return nil
}

func (cl *Cluster) validate() error {
	if len(cl.Nodes) == 0 {
		if cl.Node != "" {
			return badField("cluster.node", "%q set without cluster.nodes", cl.Node)
		}
		return nil
	}
	if cl.Node == "" {
		return badField("cluster.node", "required with cluster.nodes (which node is this process?)")
	}
	seen := map[string]bool{}
	self := false
	for i, n := range cl.Nodes {
		switch {
		case n == "":
			return badField(fmt.Sprintf("cluster.nodes[%d]", i), "empty node name")
		case seen[n]:
			return badField(fmt.Sprintf("cluster.nodes[%d]", i), "duplicate node %q", n)
		}
		seen[n] = true
		if n == cl.Node {
			self = true
		}
	}
	if !self {
		return badField("cluster.node", "%q not in cluster.nodes", cl.Node)
	}
	return nil
}

// parseUnitKey resolves a unit reference: a decimal id ("7") or the
// plant-id form ("unit-007").
func parseUnitKey(key string) (uint8, error) {
	s := strings.TrimPrefix(key, "unit-")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n > 255 {
		return 0, fmt.Errorf("unit id %q must be 0..255 or unit-NNN: %w", key, ErrBadConfig)
	}
	return uint8(n), nil
}

// storeMode reports whether the record block asks for the durable
// segment-chain store rather than a single capture file.
func (r Record) storeMode() bool {
	return r.SegmentBytes != 0 || r.SegmentSpanSeconds != 0 ||
		r.Keep != 0 || r.KeepBytes != 0 || r.KeepAgeSeconds != 0
}

// Derived accessors: the zero-defaulting the flag layer used to do.

func (c *Config) sampleSeconds() float64 {
	if c.SampleSeconds == 0 {
		return 4.5
	}
	return c.SampleSeconds
}

// Sample returns the observation interval.
func (c *Config) Sample() time.Duration {
	return time.Duration(c.sampleSeconds() * float64(time.Second))
}

// OnsetIndex converts the global onset hour to an observation index.
func (c *Config) OnsetIndex() int {
	return int(c.OnsetHour * 3600 / c.sampleSeconds())
}

// UnitOnsets resolves the per-unit onset override table into observation
// indexes (-1 = inherit the global onset), the PairingOptions.OnsetFor
// shape.
func (c *Config) UnitOnsets() [256]int {
	var onsets [256]int
	for i := range onsets {
		onsets[i] = -1
	}
	for key, u := range c.Units {
		unit, err := parseUnitKey(key)
		if err != nil || u.OnsetHour == nil {
			continue // Validate already rejected bad keys
		}
		onsets[unit] = int(*u.OnsetHour * 3600 / c.sampleSeconds())
	}
	return onsets
}

// PairTimeout returns the pairing age horizon (0 = never).
func (c *Config) PairTimeout() time.Duration {
	if c.Pairing.TimeoutSeconds < 0 {
		return 0
	}
	if c.Pairing.TimeoutSeconds == 0 {
		return 2 * time.Second
	}
	return time.Duration(c.Pairing.TimeoutSeconds * float64(time.Second))
}

// StallHorizon returns the /healthz stall horizon (negative = disabled).
func (c *Config) StallHorizon() time.Duration {
	if c.Ops.HealthzStallSeconds < 0 {
		return -1
	}
	if c.Ops.HealthzStallSeconds == 0 {
		return time.Minute
	}
	return time.Duration(c.Ops.HealthzStallSeconds * float64(time.Second))
}

// ErrNotReloadable reports a POST /reload or SIGHUP whose new config
// changes fields only a restart can apply.
var ErrNotReloadable = errors.New("control: field changed but is not reloadable without a restart")

// CheckReload verifies that next differs from c only in the reloadable
// subset — ops.healthz_stall_seconds and units.* — and returns the field
// that violates it otherwise. Everything else (listeners, model, pool
// geometry, record chain) is wired into running goroutines and sockets;
// pretending to reload those would silently keep stale values.
func (c *Config) CheckReload(next *Config) error {
	frozen := []struct {
		name     string
		old, new any
	}{
		{"calibration", c.Calibration, next.Calibration},
		{"sample_seconds", c.SampleSeconds, next.SampleSeconds},
		{"onset_hour", c.OnsetHour, next.OnsetHour},
		{"components", c.Components, next.Components},
		{"listeners", c.Listeners, next.Listeners},
		{"ops.addr", c.Ops.Addr, next.Ops.Addr},
		{"ops.auth_token", c.Ops.AuthToken, next.Ops.AuthToken},
		{"pairing", c.Pairing, next.Pairing},
		{"fleet", c.Fleet, next.Fleet},
		{"adapt", c.Adapt, next.Adapt},
		{"record", c.Record, next.Record},
		{"cluster", fmt.Sprint(c.Cluster), fmt.Sprint(next.Cluster)},
	}
	for _, f := range frozen {
		if f.old != f.new {
			return fmt.Errorf("%s: %w", f.name, ErrNotReloadable)
		}
	}
	return nil
}

// Redacted returns a copy safe to serve from GET /config: secrets masked.
func (c *Config) Redacted() Config {
	out := *c
	if out.Ops.AuthToken != "" {
		out.Ops.AuthToken = "[redacted]"
	}
	return out
}
