//go:build !race

package control

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped
// under -race (the behavioural parts of those tests still run).
const raceEnabled = false
