package control

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one typed control-plane event as published to /events
// subscribers. Data carries the event-specific payload, marshalled once
// per publish regardless of subscriber count.
type Event struct {
	// Type is "scored", "alarm", "verdict", "model-swapped",
	// "view-stalled", "pair-dropped", "attached", "detached" or "drain".
	Type string `json:"type"`
	// Unit is the plant id ("unit-007"), empty for process-wide events.
	Unit string `json:"unit,omitempty"`
	// Data is the event payload.
	Data any `json:"data,omitempty"`
}

// bus fans events out to SSE subscribers. Publishing never blocks: a
// subscriber that cannot keep up has events dropped and counted — the
// scoring pipeline's back-pressure contract must not extend to slow HTTP
// clients.
type bus struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	published atomic.Uint64
	dropped   atomic.Uint64 // total across all subscribers
}

// subscriber is one /events client: a buffered frame channel plus its
// personal drop count (reported in its SSE stream as a "dropped" comment
// so the client knows its view has holes).
type subscriber struct {
	ch      chan []byte
	dropped atomic.Uint64
}

func newBus() *bus {
	return &bus{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a client with the given buffer depth.
func (b *bus) subscribe(depth int) *subscriber {
	if depth <= 0 {
		depth = 64
	}
	s := &subscriber{ch: make(chan []byte, depth)}
	b.mu.Lock()
	if !b.closed {
		b.subs[s] = struct{}{}
	} else {
		close(s.ch)
	}
	b.mu.Unlock()
	return s
}

func (b *bus) unsubscribe(s *subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
	b.mu.Unlock()
}

// publish renders the event as one SSE frame and offers it to every
// subscriber, dropping (and counting) on full buffers.
func (b *bus) publish(ev Event, marshal func(any) ([]byte, error)) {
	// Render before taking the lock: marshal is caller-supplied, and calling
	// out while holding b.mu invites the lock-inversion class pcslint's
	// callback-under-lock analyzer exists for. The cost is one wasted
	// marshal when there are no subscribers — events are rare.
	data, err := marshal(ev)
	if err != nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", ev.Type, data))
	b.mu.Lock()
	if b.closed || len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	b.published.Add(1)
	for s := range b.subs {
		select {
		case s.ch <- frame:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// close terminates every subscriber stream.
func (b *bus) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for s := range b.subs {
			delete(b.subs, s)
			close(s.ch)
		}
	}
	b.mu.Unlock()
}

// serveSSE streams the bus to one HTTP client until it disconnects or
// the bus closes. Every heartbeat interval with no traffic emits an SSE
// comment carrying the client's cumulative drop count, so backpressure
// loss is visible on the wire, not just in metrics.
func (b *bus) serveSSE(w http.ResponseWriter, r *http.Request, heartbeat time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": connected\n\n")
	fl.Flush()

	sub := b.subscribe(256)
	defer b.unsubscribe(sub)
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, open := <-sub.ch:
			if !open {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-tick.C:
			if _, err := fmt.Fprintf(w, ": heartbeat dropped=%d\n\n", sub.dropped.Load()); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
