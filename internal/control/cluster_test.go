package control

import (
	"sync"
	"testing"

	"pcsmon"
	"pcsmon/internal/control/router"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/scenario"
)

// The lab fixture (plant template warmup + NOC calibration) dominates the
// cost of the cluster parity test, so it is shared across the package.
var (
	clusterLabOnce sync.Once
	clusterLab     *pcsmon.Lab
	clusterLabErr  error
)

func clusterTestLab(t *testing.T) *pcsmon.Lab {
	t.Helper()
	clusterLabOnce.Do(func() {
		clusterLab, clusterLabErr = pcsmon.NewLab(pcsmon.LabConfig{
			CalibrationRuns:  3,
			CalibrationHours: 12,
			Seed:             5,
		})
	})
	if clusterLabErr != nil {
		t.Fatalf("NewLab: %v", clusterLabErr)
	}
	return clusterLab
}

// TestClusterTwoNodeParity is the scale-out acceptance test: the four §V
// scenarios, one per fieldbus unit, routed through a two-node rendezvous
// table into two independent planes sharing one calibration, must produce
// verdicts bit-identical to a single plane that owns the whole fleet. The
// units are picked from the live table so each node owns two of them.
func TestClusterTwoNodeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates four multi-hour scenario runs")
	}
	l := clusterTestLab(t)

	tab, err := router.NewTable("node-a", "node-b")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	var aUnits, bUnits []uint8
	for u := 0; u < 256 && (len(aUnits) < 2 || len(bUnits) < 2); u++ {
		switch tab.Owner(uint8(u)) {
		case "node-a":
			if len(aUnits) < 2 {
				aUnits = append(aUnits, uint8(u))
			}
		case "node-b":
			if len(bUnits) < 2 {
				bUnits = append(bUnits, uint8(u))
			}
		}
	}
	if len(aUnits) < 2 || len(bUnits) < 2 {
		t.Fatalf("table does not spread units: node-a %v node-b %v", aUnits, bUnits)
	}
	units := []uint8{aUnits[0], bUnits[0], aUnits[1], bUnits[1]}

	const onsetHour = 3
	scs := pcsmon.PaperScenarios(onsetHour)
	exp := &scenario.Experiment{
		Template:  l.Template,
		System:    l.System,
		Hours:     10,
		OnsetHour: onsetHour,
		Decimate:  2,
		SeedBase:  9000,
	}
	// One simulated run per scenario, converted to paired fieldbus frames
	// on that scenario's unit. The tap's rows are reused buffers — copy.
	frames := make([][]*fieldbus.Frame, len(scs))
	for i, sc := range scs {
		u := units[i]
		_, err := exp.Feed(sc, exp.SeedBase+int64(i), func(index int, ctrl, proc []float64) error {
			frames[i] = append(frames[i],
				&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: u, Seq: uint64(index + 1),
					Values: append([]float64(nil), ctrl...)},
				&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: u, Seq: uint64(index + 1),
					Values: append([]float64(nil), proc...)},
			)
			return nil
		})
		if err != nil {
			t.Fatalf("feed %s: %v", sc.Key, err)
		}
	}
	// Interleave the four runs round-robin — the mixed wire traffic a
	// shared ingest edge actually sees.
	var wire []*fieldbus.Frame
	for i := 0; ; i++ {
		any := false
		for _, fr := range frames {
			if 2*i+1 < len(fr) {
				wire = append(wire, fr[2*i], fr[2*i+1])
				any = true
			}
		}
		if !any {
			break
		}
	}

	newPlane := func() *Plane {
		cfg := &Config{
			// Never opened: Options.System supplies the calibration.
			Calibration:   "shared-lab-calibration",
			SampleSeconds: exp.SampleInterval().Seconds(),
			OnsetHour:     onsetHour,
			Listeners:     Listeners{TCP: "127.0.0.1:0"},
			Ops:           Ops{Addr: "127.0.0.1:0"},
			Pairing:       Pairing{TimeoutSeconds: -1},
		}
		if got, want := cfg.OnsetIndex(), exp.OnsetIndex(); got != want {
			t.Fatalf("config onset index %d, experiment %d — geometry drifted", got, want)
		}
		p, err := New(cfg, Options{System: l.System})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return p
	}

	// Single node: one plane owns every unit.
	single := newPlane()
	for _, f := range wire {
		if err := single.Ingest(f); err != nil {
			t.Fatalf("single ingest: %v", err)
		}
	}
	if err := single.Drain(); err != nil {
		t.Fatalf("single drain: %v", err)
	}
	want := single.Reports()
	_ = single.Close()
	if len(want) != len(units) {
		t.Fatalf("single node reported %d units, want %d", len(want), len(units))
	}

	// Two nodes: the same wire traffic through the rendezvous router.
	pa, pb := newPlane(), newPlane()
	defer func() { _ = pa.Close(); _ = pb.Close() }()
	rt, err := router.NewRouter(tab, map[string]router.Sink{
		"node-a": pa.Ingest,
		"node-b": pb.Ingest,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	for _, f := range wire {
		if err := rt.Route(f); err != nil {
			t.Fatalf("route unit %d seq %d: %v", f.Unit, f.Seq, err)
		}
	}
	if got := rt.Forwarded(); got != uint64(len(wire)) {
		t.Errorf("forwarded %d frames, want %d", got, len(wire))
	}
	if got := rt.Unrouted(); got != 0 {
		t.Errorf("unrouted %d frames, want 0", got)
	}
	if err := pa.Drain(); err != nil {
		t.Fatalf("node-a drain: %v", err)
	}
	if err := pb.Drain(); err != nil {
		t.Fatalf("node-b drain: %v", err)
	}

	// Each node reports exactly the units it owns, and the merged verdicts
	// are bit-identical to the single-node run.
	merged := map[string]UnitReport{}
	for node, reps := range map[string]map[string]UnitReport{"node-a": pa.Reports(), "node-b": pb.Reports()} {
		for id, rep := range reps {
			if _, dup := merged[id]; dup {
				t.Errorf("unit %s reported by both nodes", id)
			}
			merged[id] = rep
			u, err := parseUnitKey(id)
			if err != nil {
				t.Fatalf("report id %q: %v", id, err)
			}
			if owner := tab.Owner(u); owner != node {
				t.Errorf("unit %s reported by %s, owned by %s", id, node, owner)
			}
		}
	}
	for i, sc := range scs {
		id := pcsmon.PlantID(units[i])
		w, ok := want[id]
		if !ok {
			t.Errorf("scenario %s: no single-node report for %s", sc.Key, id)
			continue
		}
		g, ok := merged[id]
		if !ok {
			t.Errorf("scenario %s: no two-node report for %s", sc.Key, id)
			continue
		}
		if g.Verdict != w.Verdict || g.AttackedVar != w.AttackedVar || g.Explanation != w.Explanation {
			t.Errorf("scenario %s unit %s: two-node report diverged:\n  one node:  %s var %d (%s)\n  two nodes: %s var %d (%s)",
				sc.Key, id, w.Verdict, w.AttackedVar, w.Explanation, g.Verdict, g.AttackedVar, g.Explanation)
		}
		// Ground-truth sanity on the two §V cases the lab tests also pin.
		switch sc.Key {
		case "idv6":
			if w.Verdict != pcsmon.VerdictDisturbance.String() {
				t.Errorf("idv6 verdict %s, want disturbance (%s)", w.Verdict, w.Explanation)
			}
		case "xmv3-integrity":
			if w.Verdict != pcsmon.VerdictIntegrityAttack.String() {
				t.Errorf("xmv3 verdict %s, want integrity-attack (%s)", w.Verdict, w.Explanation)
			}
		}
	}
}
