package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pcsmon"
	"pcsmon/internal/core"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/obs/opsserver"
)

// ErrDraining is returned by ingest entry points once a drain began.
var ErrDraining = errors.New("control: plane is draining")

// Options tunes New beyond the config file.
type Options struct {
	// Out receives the plane's log lines (nil = discard).
	Out io.Writer
	// System is a pre-calibrated monitoring system; nil calibrates from
	// Config.Calibration (the serve path). Tests share one calibration
	// across planes through this.
	System *core.System
	// ConfigPath, when set, is re-read on Reload(nil) — the SIGHUP path.
	ConfigPath string
	// Clock supplies the plane's notion of now (liveness stamps, flush
	// cadence, health snapshots); nil means the wall clock. Injected so
	// capture replay and tests can drive the timeline.
	Clock func() time.Time
}

// UnitReport is one unit's final classified report, kept after detach or
// drain and served from GET /units/{id}.
type UnitReport struct {
	Unit        string    `json:"unit"`
	Verdict     string    `json:"verdict"`
	AttackedVar int       `json:"attacked_var"`
	Explanation string    `json:"explanation"`
	DetachedAt  time.Time `json:"detached_at"`
}

// Plane is a running control plane: ingest listeners, the pairing →
// fleet scoring pipeline, the optional capture store, and the ops/control
// HTTP server. Create with New, stop with Drain (or Close, which also
// abandons the ops listener).
type Plane struct {
	opts  Options
	out   io.Writer
	clock func() time.Time

	cfgMu sync.Mutex
	cfg   *Config

	obs *pcsmon.Observability
	fl  *pcsmon.Fleet
	pi  *pcsmon.PairingIngest
	ops *opsserver.Server

	tcp *fieldbus.Server
	udp *fieldbus.UDPServer

	recMu sync.Mutex
	rec   *fieldbus.CaptureStore

	bus *bus

	// unitOnsets is the reloadable per-unit onset table read by the
	// pairing attach hook (-1 = inherit the global onset).
	unitOnsets [256]atomic.Int64

	lastSeen atomic.Int64 // UnixNano of the last accepted frame
	accepted atomic.Uint64
	rejected atomic.Uint64 // frames refused because a drain began
	reloads  atomic.Uint64

	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error
	drained   chan struct{}

	pumpDone chan struct{}

	repMu   sync.Mutex
	reports map[string]UnitReport
}

// New builds and starts a plane: calibrates (unless Options.System is
// given), binds the ops listener and the ingest listeners, and starts
// scoring. On error nothing is left running.
func New(cfg *Config, opts Options) (*Plane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plane{
		opts:     opts,
		out:      opts.Out,
		cfg:      cfg,
		obs:      pcsmon.NewObservability(),
		bus:      newBus(),
		drained:  make(chan struct{}),
		pumpDone: make(chan struct{}),
		reports:  map[string]UnitReport{},
	}
	if p.out == nil {
		p.out = io.Discard
	}
	p.clock = opts.Clock
	if p.clock == nil {
		p.clock = time.Now
	}
	p.setUnitOnsets(cfg)
	p.lastSeen.Store(p.clock().UnixNano())

	// The ops listener binds first so an unusable address fails before the
	// (expensive) calibration, like the flag path did.
	ops, err := opsserver.Start(cfg.Ops.Addr, opsserver.Options{
		Metrics:      p.obs.Metrics,
		Health:       p.obs.Health,
		Totals:       p.totals,
		LastActivity: func() time.Time { return time.Unix(0, p.lastSeen.Load()) },
		StallAfter:   cfg.StallHorizon(),
		AuthToken:    cfg.Ops.AuthToken,
		Extra: map[string]http.Handler{
			"/units/": http.HandlerFunc(p.handleUnits),
			"/config": http.HandlerFunc(p.handleConfig),
			"/reload": http.HandlerFunc(p.handleReload),
			"/drain":  http.HandlerFunc(p.handleDrain),
			"/events": http.HandlerFunc(p.handleEvents),
		},
	})
	if err != nil {
		return nil, fmt.Errorf("control: ops listener %s: %v: %w", cfg.Ops.Addr, err, ErrBadConfig)
	}
	p.ops = ops
	fail := func(err error) (*Plane, error) {
		p.teardownPartial()
		return nil, err
	}

	sys := opts.System
	if sys == nil {
		sys, err = calibrate(cfg, p.out)
		if err != nil {
			return fail(err)
		}
	}

	fl, err := pcsmon.NewFleet(sys, pcsmon.FleetOptions{
		Workers:     cfg.Fleet.Workers,
		Mailbox:     cfg.Fleet.Mailbox,
		Batch:       cfg.Fleet.Batch,
		FlushEvery:  time.Duration(cfg.Fleet.FlushEveryMS * float64(time.Millisecond)),
		EventBuffer: cfg.Fleet.EventBuffer,
		EmitEvery:   emitEvery(cfg),
		Sample:      cfg.Sample(),
		Adaptive:    adaptiveOptions(cfg),
		Obs:         p.obs,
	})
	if err != nil {
		return fail(err)
	}
	p.fl = fl
	go p.pump()

	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{
		Window:     cfg.Pairing.Window,
		Timeout:    cfg.PairTimeout(),
		StallAfter: cfg.Pairing.StallAfter,
		Onset:      cfg.OnsetIndex(),
		OnsetFor:   p.onsetFor,
		Dedup:      cfg.Pairing.Dedup,
		OnAttach: func(plant string) {
			fmt.Fprintf(p.out, "unit %s attached\n", plant)
			p.bus.publish(Event{Type: "attached", Unit: plant}, json.Marshal)
		},
	}, p.pairingEvent)
	if err != nil {
		return fail(err)
	}
	p.pi = pi

	if cfg.Record.Path != "" {
		st, err := fieldbus.OpenCaptureStore(cfg.Record.Path, fieldbus.StoreOptions{
			SegmentBytes: cfg.Record.SegmentBytes,
			SegmentSpan:  time.Duration(cfg.Record.SegmentSpanSeconds * float64(time.Second)),
			KeepSegments: cfg.Record.Keep,
			KeepBytes:    cfg.Record.KeepBytes,
			KeepAge:      time.Duration(cfg.Record.KeepAgeSeconds * float64(time.Second)),
			FlushEvery:   recordFlush(cfg),
		})
		if err != nil {
			return fail(fmt.Errorf("control: record.path: %w", err))
		}
		p.rec = st
	}

	if cfg.Listeners.TCP != "" {
		p.tcp, err = fieldbus.NewServer(cfg.Listeners.TCP, p.ingest)
		if err != nil {
			return fail(fmt.Errorf("control: listeners.tcp: %w", err))
		}
		fmt.Fprintf(p.out, "listening on %s\n", p.tcp.Addr())
	}
	if cfg.Listeners.UDP != "" {
		p.udp, err = fieldbus.NewUDPServer(cfg.Listeners.UDP, p.ingest)
		if err != nil {
			return fail(fmt.Errorf("control: listeners.udp: %w", err))
		}
		fmt.Fprintf(p.out, "listening on udp://%s\n", p.udp.Addr())
	}
	fmt.Fprintf(p.out, "control plane up: ops %s\n", p.ops.URL())

	go p.tickLoop()
	return p, nil
}

// teardownPartial unwinds a half-built plane on a New failure.
func (p *Plane) teardownPartial() {
	if p.tcp != nil {
		_ = p.tcp.Close()
	}
	if p.udp != nil {
		_ = p.udp.Close()
	}
	if p.rec != nil {
		p.rec.Abandon()
	}
	if p.fl != nil {
		_ = p.fl.Close()
		<-p.pumpDone
	}
	p.bus.close()
	_ = p.ops.Close()
}

// calibrate builds the monitoring system from the configured NOC CSV.
func calibrate(cfg *Config, out io.Writer) (*core.System, error) {
	f, err := os.Open(cfg.Calibration)
	if err != nil {
		return nil, fmt.Errorf("control: calibration: %v: %w", err, ErrBadConfig)
	}
	defer func() { _ = f.Close() }()
	cal, err := dataset.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("control: calibration %s: %w", cfg.Calibration, err)
	}
	sys, err := core.Calibrate(cal, core.Config{Components: cfg.Components})
	if err != nil {
		return nil, fmt.Errorf("control: calibration %s: %w", cfg.Calibration, err)
	}
	mon := sys.Monitor()
	fmt.Fprintf(out, "calibrated on %d observations: A=%d components, limits D99=%.2f Q99=%.2f\n",
		cal.Rows(), mon.Model().NComponents(), mon.Limits().D99, mon.Limits().Q99)
	return sys, nil
}

// emitEvery maps the config's "0 = no scored events" convention onto the
// fleet's "-1 = none" one: a service's SSE stream gets per-observation
// scores only when explicitly asked for.
func emitEvery(cfg *Config) int {
	if cfg.Fleet.EmitEvery == 0 {
		return -1
	}
	return cfg.Fleet.EmitEvery
}

func adaptiveOptions(cfg *Config) pcsmon.AdaptiveOptions {
	if cfg.Adapt.Every == 0 {
		return pcsmon.AdaptiveOptions{}
	}
	return pcsmon.AdaptiveOptions{Enabled: true, Every: cfg.Adapt.Every, Forget: cfg.Adapt.Forget}
}

func recordFlush(cfg *Config) time.Duration {
	if cfg.Record.FlushSeconds < 0 {
		return -1
	}
	return time.Duration(cfg.Record.FlushSeconds * float64(time.Second))
}

// setUnitOnsets loads the per-unit onset table from a (new) config.
func (p *Plane) setUnitOnsets(cfg *Config) {
	onsets := cfg.UnitOnsets()
	for i := range onsets {
		p.unitOnsets[i].Store(int64(onsets[i]))
	}
}

// onsetFor is the pairing attach hook: the reloadable per-unit override.
func (p *Plane) onsetFor(unit uint8) int {
	return int(p.unitOnsets[unit].Load())
}

// Ingest offers one frame to the plane — the programmatic entry the
// router's in-process sinks use; the TCP/UDP listeners funnel into the
// same path. Frames are refused (ErrDraining) once a drain began.
func (p *Plane) Ingest(f *fieldbus.Frame) error {
	if p.draining.Load() {
		p.rejected.Add(1)
		return ErrDraining
	}
	p.ingest(f)
	return nil
}

// ingest is the shared frame handler behind the listeners: record first
// (the flight recorder sees everything, like the fleet subcommand), then
// pair and score. Listener goroutines call it concurrently.
func (p *Plane) ingest(f *fieldbus.Frame) {
	if p.draining.Load() {
		p.rejected.Add(1)
		return
	}
	if p.rec != nil {
		p.recMu.Lock()
		err := p.rec.Record(f)
		p.recMu.Unlock()
		if err != nil {
			fmt.Fprintf(p.out, "record error: %v\n", err)
		}
	}
	offered, err := p.pi.OfferFrame(f)
	if err != nil {
		fmt.Fprintf(p.out, "ingest error: %v\n", err)
		return
	}
	if offered {
		p.accepted.Add(1)
		p.lastSeen.Store(p.clock().UnixNano())
	}
}

// pairingEvent forwards typed pairing events to the SSE bus and the log.
func (p *Plane) pairingEvent(ev pcsmon.FleetEvent) {
	switch e := ev.Event.(type) {
	case pcsmon.ViewStalled:
		fmt.Fprintf(p.out, "VIEW STALL [%s] %s frames missing since obs %d — scoring hold-last-value (DoS-consistent)\n",
			ev.Plant, e.View, e.Seq)
		p.bus.publish(Event{Type: "view-stalled", Unit: ev.Plant, Data: e}, json.Marshal)
	case pcsmon.PairDropped:
		p.bus.publish(Event{Type: "pair-dropped", Unit: ev.Plant, Data: e}, json.Marshal)
	}
}

// pump is the single consumer of the fleet's event stream: it keeps the
// final per-unit reports and republishes everything onto the SSE bus.
func (p *Plane) pump() {
	defer close(p.pumpDone)
	for ev := range p.fl.Events() {
		switch e := ev.Event.(type) {
		case pcsmon.SampleScored:
			p.bus.publish(Event{Type: "scored", Unit: ev.Plant, Data: e}, json.Marshal)
		case pcsmon.AlarmRaised:
			fmt.Fprintf(p.out, "ALARM [%s/%s] at obs %d (run start %d, charts %v)\n",
				ev.Plant, e.View, e.Index, e.RunStart, e.Charts)
			p.bus.publish(Event{Type: "alarm", Unit: ev.Plant, Data: e}, json.Marshal)
		case pcsmon.ModelSwapped:
			fmt.Fprintf(p.out, "MODEL SWAP [%s] at obs %d -> generation %d\n", ev.Plant, e.Index, e.Generation)
			p.bus.publish(Event{Type: "model-swapped", Unit: ev.Plant, Data: e}, json.Marshal)
		case pcsmon.VerdictReady:
			// A stream that never scored an observation finishes without a
			// report; it still gets a terminal entry so GET /units answers.
			rep := UnitReport{
				Unit:        ev.Plant,
				Verdict:     "error",
				AttackedVar: -1,
				Explanation: "stream finished without a classifiable report",
				DetachedAt:  p.clock(),
			}
			if e.Report != nil {
				rep.Verdict = e.Report.Verdict.String()
				rep.AttackedVar = e.Report.AttackedVar
				rep.Explanation = e.Report.Explanation
			}
			p.repMu.Lock()
			p.reports[ev.Plant] = rep
			p.repMu.Unlock()
			fmt.Fprintf(p.out, "unit %s: %s after %d observations\n", ev.Plant, rep.Verdict, e.Samples)
			p.bus.publish(Event{Type: "verdict", Unit: ev.Plant, Data: rep}, json.Marshal)
		}
	}
}

// tickLoop drives the pairing age horizon and the capture store's
// crash-durability flush until drain.
func (p *Plane) tickLoop() {
	flushEvery := recordFlush(p.config())
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	lastFlush := p.clock()
	for {
		select {
		case <-p.drained:
			return
		case <-ticker.C:
			if p.draining.Load() {
				return
			}
			if err := p.pi.Tick(p.clock()); err != nil && !p.draining.Load() {
				fmt.Fprintf(p.out, "pairing tick error: %v\n", err)
			}
			if p.rec != nil && flushEvery > 0 && p.clock().Sub(lastFlush) >= flushEvery {
				p.recMu.Lock()
				ferr := p.rec.Flush()
				p.recMu.Unlock()
				lastFlush = p.clock()
				if ferr != nil {
					fmt.Fprintf(p.out, "record flush error: %v\n", ferr)
				}
			}
		}
	}
}

// Drain gracefully stops the plane: new frames are refused, the ingest
// listeners close, the pairing correlator and fleet mailboxes flush,
// every unit detaches (final verdicts land in the report table and on the
// SSE bus), and the capture store seals its tail. Idempotent; safe from
// any goroutine, including the plane's own HTTP handlers. The ops
// listener stays up so /status, /units and final SSE events remain
// readable; Close shuts it down.
func (p *Plane) Drain() error {
	p.drainOnce.Do(func() {
		p.draining.Store(true)
		fmt.Fprintf(p.out, "drain: refusing new frames\n")
		p.bus.publish(Event{Type: "drain"}, json.Marshal)
		// Stop the listeners so no receive goroutine races the flush.
		if p.tcp != nil {
			_ = p.tcp.Close()
		}
		if p.udp != nil {
			_ = p.udp.Close()
		}
		// Everything accepted before the flag flipped is still in the
		// correlator's reorder windows and the workers' mailboxes: flush the
		// correlator (forcing out held observations), then detach every unit
		// — Detach blocks until the stream's queue is scored and its verdict
		// emitted, which is the losslessness contract.
		var err error
		if ferr := p.pi.Flush(); ferr != nil {
			err = ferr
		}
		for _, id := range p.fl.Plants() {
			if _, derr := p.fl.Detach(id); derr != nil {
				// A unit with nothing scored (attached, never fed) has
				// nothing to lose; any detach error is per-unit news — it
				// lands in that unit's report, not in the drain's verdict.
				fmt.Fprintf(p.out, "drain: detach %s: %v\n", id, derr)
			}
		}
		if cerr := p.fl.Close(); cerr != nil && err == nil {
			err = cerr
		}
		<-p.pumpDone
		if p.rec != nil {
			p.recMu.Lock()
			if cerr := p.rec.Close(); cerr != nil && err == nil {
				err = cerr // Close flushes and seals the unsealed tail
			}
			p.recMu.Unlock()
		}
		st := p.pi.Stats()
		fmt.Fprintf(p.out, "drain complete: %d frames accepted, %d paired, %d refused after drain\n",
			p.accepted.Load(), st.Paired, p.rejected.Load())
		p.bus.close()
		p.drainErr = err
		close(p.drained)
	})
	<-p.drained
	return p.drainErr
}

// Close drains (if not already drained) and stops the ops listener.
func (p *Plane) Close() error {
	err := p.Drain()
	if cerr := p.ops.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Drained returns a channel closed once a drain completes.
func (p *Plane) Drained() <-chan struct{} { return p.drained }

// Draining reports whether a drain has begun.
func (p *Plane) Draining() bool { return p.draining.Load() }

// OpsURL returns the control API's base URL.
func (p *Plane) OpsURL() string { return p.ops.URL() }

// Accepted returns the number of observation frames accepted pre-drain.
func (p *Plane) Accepted() uint64 { return p.accepted.Load() }

// Reports snapshots the final per-unit reports (detached/drained units).
func (p *Plane) Reports() map[string]UnitReport {
	p.repMu.Lock()
	defer p.repMu.Unlock()
	out := make(map[string]UnitReport, len(p.reports))
	for k, v := range p.reports {
		out[k] = v
	}
	return out
}

func (p *Plane) config() *Config {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	return p.cfg
}

// Reload applies a new config's reloadable subset — the /healthz stall
// horizon and the per-unit overrides. A nil next re-reads
// Options.ConfigPath (the SIGHUP path). Non-reloadable changes are
// rejected with ErrNotReloadable and nothing is applied.
func (p *Plane) Reload(next *Config) error {
	if next == nil {
		if p.opts.ConfigPath == "" {
			return fmt.Errorf("control: reload: no config path to re-read: %w", ErrBadConfig)
		}
		loaded, err := Load(p.opts.ConfigPath)
		if err != nil {
			return err
		}
		next = loaded
	}
	if err := next.Validate(); err != nil {
		return err
	}
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	if err := p.cfg.CheckReload(next); err != nil {
		return err
	}
	p.cfg = next
	p.setUnitOnsets(next)
	p.ops.SetStallAfter(next.StallHorizon())
	n := p.reloads.Add(1)
	fmt.Fprintf(p.out, "reload %d applied (healthz stall %v, %d unit overrides)\n",
		n, next.StallHorizon(), len(next.Units))
	return nil
}

// totals builds the /status aggregate map (fleet + pairing + control
// counters), mirroring the fleet subcommand's document so `mspctool
// status` renders either.
func (p *Plane) totals() map[string]float64 {
	m := map[string]float64{}
	if p.fl == nil {
		return m
	}
	st := p.fl.Stats()
	m["fleet_active_streams"] = float64(st.Active)
	m["fleet_attached"] = float64(st.Attached)
	m["fleet_observations"] = float64(st.Observations)
	m["fleet_alarms"] = float64(st.Alarms)
	m["fleet_verdicts"] = float64(st.Verdicts)
	m["fleet_model_swaps"] = float64(st.ModelSwaps)
	m["fleet_model_generation"] = float64(st.ModelGeneration)
	m["fleet_obs_per_sec"] = st.ObsPerSec
	if p.pi != nil {
		ps := p.pi.Stats()
		m["pairing_frames"] = float64(ps.Frames)
		m["pairing_paired"] = float64(ps.Paired)
		m["pairing_orphans"] = float64(ps.OrphanSensors + ps.OrphanActuators)
		m["pairing_gap_seqs"] = float64(ps.GapSeqs)
		m["pairing_duplicates"] = float64(ps.Duplicates)
		m["pairing_stale"] = float64(ps.Stale)
		m["pairing_loss_ratio"] = ps.LossRate()
		m["pairing_deduped"] = float64(p.pi.Deduped())
		m["pairing_quiesced_drops"] = float64(p.pi.QuiescedDrops())
	}
	m["control_frames_accepted"] = float64(p.accepted.Load())
	m["control_frames_rejected"] = float64(p.rejected.Load())
	m["control_reloads"] = float64(p.reloads.Load())
	m["control_events_published"] = float64(p.bus.published.Load())
	m["control_events_dropped"] = float64(p.bus.dropped.Load())
	if p.draining.Load() {
		m["control_draining"] = 1
	}
	return m
}

// ---- HTTP API ----

// apiError is the control API's error envelope.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleUnits routes GET /units/{id} and POST /units/{id}/{attach|detach|drain}.
func (p *Plane) handleUnits(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/units/")
	idPart, action, _ := strings.Cut(rest, "/")
	unit, err := parseUnitKey(idPart)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := pcsmon.PlantID(unit)
	switch {
	case r.Method == http.MethodGet && action == "":
		p.serveUnit(w, unit, id)
	case r.Method == http.MethodPost && action == "attach":
		if p.draining.Load() {
			apiError(w, http.StatusConflict, "plane is draining")
			return
		}
		if err := p.pi.AttachUnit(unit); err != nil {
			if errors.Is(err, pcsmon.ErrDuplicatePlant) {
				apiError(w, http.StatusConflict, "unit %s already attached", id)
				return
			}
			apiError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"unit": id, "state": "attached"})
	case r.Method == http.MethodPost && (action == "detach" || action == "drain"):
		var rep *pcsmon.Report
		if action == "drain" {
			rep, err = p.pi.DrainUnit(unit)
		} else {
			rep, err = p.pi.DetachUnit(unit)
		}
		if err != nil {
			if errors.Is(err, pcsmon.ErrUnknownPlant) {
				apiError(w, http.StatusNotFound, "unit %s not attached", id)
				return
			}
			apiError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		doc := map[string]any{"unit": id, "state": action + "ed", "verdict": rep.Verdict.String()}
		if rep.AttackedVar >= 0 {
			doc["attacked_var"] = rep.AttackedVar
		}
		p.bus.publish(Event{Type: action + "ed", Unit: id}, json.Marshal)
		writeJSON(w, http.StatusOK, doc)
	default:
		apiError(w, http.StatusMethodNotAllowed, "%s %s not supported", r.Method, r.URL.Path)
	}
}

// serveUnit renders GET /units/{id}: live health plus the final report
// when the unit has already been detached or drained.
func (p *Plane) serveUnit(w http.ResponseWriter, unit uint8, id string) {
	doc := map[string]any{"unit": id}
	known := false
	if h := p.obs.Health.Get(id); h != nil {
		doc["health"] = h.Status(p.clock())
		known = true
	}
	p.repMu.Lock()
	rep, ok := p.reports[id]
	p.repMu.Unlock()
	if ok {
		doc["report"] = rep
		known = true
	}
	if !known {
		apiError(w, http.StatusNotFound, "unit %s never attached", id)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleConfig serves the live (redacted) config document.
func (p *Plane) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "%s /config not supported", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, p.config().Redacted())
}

// handleReload applies the reloadable config subset: from the request
// body when non-empty, otherwise by re-reading the config file.
func (p *Plane) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "%s /reload not supported", r.Method)
		return
	}
	var next *Config
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(strings.TrimSpace(string(body))) > 0 {
		next, err = Parse(strings.NewReader(string(body)))
		if err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if err := p.Reload(next); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNotReloadable) {
			code = http.StatusConflict
		}
		apiError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": "reloaded", "reloads": p.reloads.Load()})
}

// handleDrain begins the graceful drain and returns once it completes —
// by then every pre-drain frame is scored, the final verdicts are in the
// report table, and the capture tail is sealed. The process itself exits
// via whoever waits on Drained() (the serve command).
func (p *Plane) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "%s /drain not supported", r.Method)
		return
	}
	if err := p.Drain(); err != nil {
		apiError(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"state":    "drained",
		"accepted": p.accepted.Load(),
		"reports":  len(p.Reports()),
	})
}

// handleEvents streams the SSE event feed.
func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "%s /events not supported", r.Method)
		return
	}
	p.bus.serveSSE(w, r, 5*time.Second)
}
