package control

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pcsmon"
)

// validConfig is the smallest document Validate accepts.
func validConfig() *Config {
	return &Config{
		Calibration: "cal.csv",
		Listeners:   Listeners{TCP: "127.0.0.1:0"},
		Ops:         Ops{Addr: "127.0.0.1:0"},
	}
}

func TestParseDefaults(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`{
		"calibration": "cal.csv",
		"listeners": {"tcp": "127.0.0.1:7700"},
		"ops": {"addr": "127.0.0.1:9101"}
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := cfg.Sample(); got != 4500*time.Millisecond {
		t.Errorf("default Sample = %v, want 4.5s", got)
	}
	if got := cfg.PairTimeout(); got != 2*time.Second {
		t.Errorf("default PairTimeout = %v, want 2s", got)
	}
	if got := cfg.StallHorizon(); got != time.Minute {
		t.Errorf("default StallHorizon = %v, want 1m", got)
	}
	if got := cfg.OnsetIndex(); got != 0 {
		t.Errorf("default OnsetIndex = %d, want 0", got)
	}
}

func TestParseNegativeConventions(t *testing.T) {
	cfg := validConfig()
	cfg.Pairing.TimeoutSeconds = -1
	cfg.Ops.HealthzStallSeconds = -1
	if got := cfg.PairTimeout(); got != 0 {
		t.Errorf("PairTimeout(-1s) = %v, want 0 (never)", got)
	}
	if got := cfg.StallHorizon(); got >= 0 {
		t.Errorf("StallHorizon(-1s) = %v, want negative (disabled)", got)
	}
}

// TestValidateFieldPaths: every validation failure must name its field
// path and wrap ErrBadConfig (which is the facade sentinel).
func TestValidateFieldPaths(t *testing.T) {
	neg := -1.0
	cases := []struct {
		path string
		mut  func(*Config)
	}{
		{"calibration", func(c *Config) { c.Calibration = "" }},
		{"sample_seconds", func(c *Config) { c.SampleSeconds = -1 }},
		{"onset_hour", func(c *Config) { c.OnsetHour = -1 }},
		{"components", func(c *Config) { c.Components = -1 }},
		{"listeners", func(c *Config) { c.Listeners = Listeners{} }},
		{"ops.addr", func(c *Config) { c.Ops.Addr = "" }},
		{"pairing.window", func(c *Config) { c.Pairing.Window = -1 }},
		{"pairing.dedup", func(c *Config) { c.Pairing.Dedup = -1 }},
		{"fleet.workers", func(c *Config) { c.Fleet.Workers = -1 }},
		{"fleet.emit_every", func(c *Config) { c.Fleet.EmitEvery = -1 }},
		{"adapt.forget", func(c *Config) { c.Adapt.Forget = 0.5 }}, // without adapt.every
		{"record.path", func(c *Config) { c.Record.Keep = 3 }},     // retention without a path
		{"units.boiler", func(c *Config) { c.Units = map[string]UnitCfg{"boiler": {}} }},
		{"units.7.onset_hour", func(c *Config) { c.Units = map[string]UnitCfg{"7": {OnsetHour: &neg}} }},
		{"cluster.node", func(c *Config) { c.Cluster = Cluster{Nodes: []string{"a", "b"}} }},
		{"cluster.node", func(c *Config) { c.Cluster = Cluster{Node: "c", Nodes: []string{"a", "b"}} }},
		{"cluster.nodes[1]", func(c *Config) { c.Cluster = Cluster{Node: "a", Nodes: []string{"a", "a"}} }},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.mut(cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad value", tc.path)
			continue
		}
		if !errors.Is(err, ErrBadConfig) || !errors.Is(err, pcsmon.ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", tc.path, err)
		}
		if !strings.Contains(err.Error(), tc.path) {
			t.Errorf("%s: error %q does not name the field path", tc.path, err)
		}
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"calibration": "c.csv", "listners": {"tcp": "x"}}`))
	if err == nil || !errors.Is(err, ErrBadConfig) {
		t.Errorf("typoed field: err = %v, want ErrBadConfig", err)
	}
	_, err = Parse(strings.NewReader(`{
		"calibration": "c.csv",
		"listeners": {"tcp": "127.0.0.1:0"},
		"ops": {"addr": "127.0.0.1:0"}
	} {"calibration": "second.csv"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("concatenated documents: err = %v, want trailing-data rejection", err)
	}
}

func TestParseUnitKeyForms(t *testing.T) {
	for _, tc := range []struct {
		key  string
		want uint8
		ok   bool
	}{
		{"7", 7, true},
		{"007", 7, true},
		{"unit-007", 7, true},
		{"unit-255", 255, true},
		{"256", 0, false},
		{"unit-999", 0, false},
		{"boiler", 0, false},
		{"-1", 0, false},
	} {
		got, err := parseUnitKey(tc.key)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parseUnitKey(%q) = %d, %v; want %d, ok=%v", tc.key, got, err, tc.want, tc.ok)
		}
	}
}

func TestUnitOnsets(t *testing.T) {
	h := 2.0
	cfg := validConfig()
	cfg.SampleSeconds = 9
	cfg.OnsetHour = 1
	cfg.Units = map[string]UnitCfg{"unit-003": {OnsetHour: &h}, "5": {}}
	onsets := cfg.UnitOnsets()
	if onsets[3] != int(2*3600/9) {
		t.Errorf("unit 3 onset = %d, want %d", onsets[3], int(2*3600/9))
	}
	for _, u := range []int{0, 5, 255} {
		if onsets[u] != -1 {
			t.Errorf("unit %d onset = %d, want -1 (inherit)", u, onsets[u])
		}
	}
	if got := cfg.OnsetIndex(); got != 400 {
		t.Errorf("global OnsetIndex = %d, want 400", got)
	}
}

func TestCheckReload(t *testing.T) {
	cur := validConfig()

	next := *cur
	next.Ops.HealthzStallSeconds = 300
	h := 3.5
	next.Units = map[string]UnitCfg{"9": {OnsetHour: &h}}
	if err := cur.CheckReload(&next); err != nil {
		t.Errorf("reloadable subset rejected: %v", err)
	}

	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"calibration", func(c *Config) { c.Calibration = "other.csv" }},
		{"listeners", func(c *Config) { c.Listeners.TCP = "127.0.0.1:7701" }},
		{"ops.addr", func(c *Config) { c.Ops.Addr = "127.0.0.1:9999" }},
		{"ops.auth_token", func(c *Config) { c.Ops.AuthToken = "hunter2" }},
		{"pairing", func(c *Config) { c.Pairing.Window = 128 }},
		{"fleet", func(c *Config) { c.Fleet.Workers = 2 }},
		{"record", func(c *Config) { c.Record.Path = "x.pcscap" }},
		{"cluster", func(c *Config) { c.Cluster = Cluster{Node: "a", Nodes: []string{"a"}} }},
	} {
		frozen := *cur
		tc.mut(&frozen)
		err := cur.CheckReload(&frozen)
		if err == nil || !errors.Is(err, ErrNotReloadable) {
			t.Errorf("%s: CheckReload = %v, want ErrNotReloadable", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error %q does not name the frozen field", tc.name, err)
		}
	}
}

func TestRedactedMasksAuthToken(t *testing.T) {
	cfg := validConfig()
	cfg.Ops.AuthToken = "sesame"
	red := cfg.Redacted()
	if red.Ops.AuthToken != "[redacted]" {
		t.Errorf("Redacted token = %q", red.Ops.AuthToken)
	}
	if cfg.Ops.AuthToken != "sesame" {
		t.Errorf("Redacted mutated the original")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plant.json")
	if err := os.WriteFile(path, []byte(`{
		"calibration": "cal.csv",
		"listeners": {"udp": "127.0.0.1:0"},
		"ops": {"addr": "127.0.0.1:0", "auth_token": "t"},
		"cluster": {"node": "a", "nodes": ["a", "b"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cfg.Cluster.Node != "a" || len(cfg.Cluster.Nodes) != 2 {
		t.Errorf("cluster block not loaded: %+v", cfg.Cluster)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Load(missing) = %v, want ErrBadConfig", err)
	}
}
