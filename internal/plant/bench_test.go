package plant

import (
	"testing"
)

// newStreamingRun builds a retention-free tapped run — the fleet/streaming
// configuration whose per-step allocation floor the trim targets.
func newStreamingRun(t testing.TB) *Run {
	t.Helper()
	run, err := testTemplate(t).NewRun(RunConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run.Views().SetRetain(false)
	run.Views().SetTap(func(int, []float64, []float64) error { return nil })
	return run
}

// TestRunStepAllocations asserts the simulation-side allocation floor: a
// steady-state closed-loop step in streaming mode (retention off, rows
// delivered through the tap) must not allocate — the measurement sample,
// both fieldbus deliveries and the controller command block all reuse
// per-run scratch.
func TestRunStepAllocations(t *testing.T) {
	run := newStreamingRun(t)
	// Warm up the run's scratch and the process internals.
	for i := 0; i < 32; i++ {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("streaming Step allocates %.2f times per sample, want 0", avg)
	}
}

// BenchmarkRunStep measures the raw closed-loop simulation rate — the
// producer side every streaming experiment and fleet campaign pays per
// observation.
func BenchmarkRunStep(b *testing.B) {
	run := newStreamingRun(b)
	var rows int
	run.Views().SetTap(func(int, []float64, []float64) error { rows++; return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("tap never saw a row")
	}
}
