package plant

import (
	"errors"
	"math"
	"sync"
	"testing"

	"pcsmon/internal/attack"
	"pcsmon/internal/te"
)

// The template warmup is the expensive part; share one 9-second-step
// template across the package's tests.
var (
	tmplOnce sync.Once
	tmpl     *Template
	tmplErr  error
)

func testTemplate(t testing.TB) *Template {
	t.Helper()
	tmplOnce.Do(func() {
		tmpl, tmplErr = NewTemplate(Config{StepSeconds: 4.5, WarmupHours: 60})
	})
	if tmplErr != nil {
		t.Fatalf("template: %v", tmplErr)
	}
	return tmpl
}

func TestNewTemplateValidation(t *testing.T) {
	if _, err := NewTemplate(Config{StepSeconds: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig, got %v", err)
	}
}

func TestTemplateSettles(t *testing.T) {
	tp := testTemplate(t)
	base := tp.BaseXMEAS()
	if len(base) != te.NumXMEAS {
		t.Fatalf("base len %d", len(base))
	}
	// The settled operating point must be near the Downs–Vogel targets for
	// the tightly controlled channels.
	checks := []struct {
		idx int
		tol float64
	}{
		{te.XmeasAFeed, 0.10},
		{te.XmeasDFeed, 0.02},
		{te.XmeasEFeed, 0.02},
		{te.XmeasACFeed, 0.02},
		{te.XmeasReactorTemp, 0.005},
		{te.XmeasSepTemp, 0.005},
		{te.XmeasStripTemp, 0.005},
		{te.XmeasSepLevel, 0.02},
		// The stripper-level trim is slow (Ti = 3 h); at the default warmup
		// horizon it is still an inch from its 50 % setpoint.
		{te.XmeasStripLevel, 0.08},
		// The surrogate settles ~6 % below the Downs–Vogel production rate
		// (documented in EXPERIMENTS.md).
		{te.XmeasStripUnderflw, 0.08},
	}
	for _, c := range checks {
		want := te.BaseXMEASTargets[c.idx]
		if math.Abs(base[c.idx]-want) > c.tol*math.Abs(want) {
			t.Errorf("%s settled at %g, want %g ±%.1f%%",
				te.XMEASNames[c.idx], base[c.idx], want, c.tol*100)
		}
	}
	// No valve may be saturated at the settled point.
	for i, v := range tp.BaseXMV() {
		if v <= 1 || v >= 99 {
			t.Errorf("XMV(%d) settled saturated at %g%%", i+1, v)
		}
	}
}

func TestNOCRunStaysUp(t *testing.T) {
	tp := testTemplate(t)
	run, err := tp.NewRun(RunConfig{Seed: 11, Decimate: 10})
	if err != nil {
		t.Fatal(err)
	}
	completed, err := run.RunHours(24)
	if err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatalf("NOC run tripped: %s", run.ShutdownReason())
	}
	// Both views recorded and identical under no attack.
	cd := run.Views().Controller.Data()
	pd := run.Views().Process.Data()
	if cd.Rows() == 0 || cd.Rows() != pd.Rows() {
		t.Fatalf("rows: controller %d, process %d", cd.Rows(), pd.Rows())
	}
	for i := 0; i < cd.Rows(); i += 100 {
		cr, pr := cd.RowView(i), pd.RowView(i)
		for j := range cr {
			if cr[j] != pr[j] {
				t.Fatalf("views differ at row %d col %d under NOC", i, j)
			}
		}
	}
}

func TestIDV6ShutsDownHoursAfterOnset(t *testing.T) {
	tp := testTemplate(t)
	run, err := tp.NewRun(RunConfig{
		Seed:     12,
		IDVs:     []IDVEvent{{Index: 5, StartHour: 10}},
		Decimate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	completed, err := run.RunHours(30)
	if err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("IDV(6) run did not shut down within 30 h")
	}
	if run.ShutdownReason() != "stripper liquid level low" {
		t.Errorf("shutdown reason = %q, want stripper level low", run.ShutdownReason())
	}
	elapsed := run.Hours() - 10
	if elapsed < 2 || elapsed > 12 {
		t.Errorf("shutdown %.2f h after onset, want hours (2–12)", elapsed)
	}
}

func TestXMV3AttackMatchesIDV6Signature(t *testing.T) {
	// Integrity attack closing XMV(3): the process-side A feed collapses
	// exactly like IDV(6), and the plant also shuts down on stripper level.
	tp := testTemplate(t)
	run, err := tp.NewRun(RunConfig{
		Seed: 13,
		Attacks: []attack.Spec{{
			Kind:      attack.Integrity,
			Direction: attack.ActuatorLink,
			Channel:   te.XmvAFeed,
			StartHour: 10,
			Value:     0,
		}},
		Decimate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	completed, err := run.RunHours(30)
	if err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("XMV(3) attack run did not shut down within 30 h")
	}
	if run.ShutdownReason() != "stripper liquid level low" {
		t.Errorf("shutdown reason = %q", run.ShutdownReason())
	}

	// Controller view vs process view of XMV(3) diverge during the attack:
	// the controller keeps commanding (and winds the valve open), the
	// process receives 0.
	cd := run.Views().Controller.Data()
	pd := run.Views().Process.Data()
	xmv3 := te.NumXMEAS + te.XmvAFeed
	lastRow := cd.Rows() - 1
	ctrlCmd := cd.RowView(lastRow)[xmv3]
	procCmd := pd.RowView(lastRow)[xmv3]
	if procCmd != 0 {
		t.Errorf("process-side XMV(3) = %g, want forged 0", procCmd)
	}
	if ctrlCmd <= 50 {
		t.Errorf("controller-side XMV(3) = %g, want wound up high", ctrlCmd)
	}
	// The real A-feed measurement collapses in both views (the sensor is
	// honest in this scenario).
	if got := pd.RowView(lastRow)[te.XmeasAFeed]; got > 0.05 {
		t.Errorf("A feed during actuator attack = %g, want ≈ 0", got)
	}
}

func TestXMEAS1AttackOpensValve(t *testing.T) {
	// Forging XMEAS(1)=0 toward the controller makes the flow loop open
	// XMV(3); the *real* flow rises.
	tp := testTemplate(t)
	run, err := tp.NewRun(RunConfig{
		Seed: 14,
		Attacks: []attack.Spec{{
			Kind:      attack.Integrity,
			Direction: attack.SensorLink,
			Channel:   te.XmeasAFeed,
			StartHour: 2,
			Value:     0,
		}},
		Decimate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.RunHours(4); err != nil {
		t.Fatal(err)
	}
	cd := run.Views().Controller.Data()
	pd := run.Views().Process.Data()
	last := cd.Rows() - 1
	if got := cd.RowView(last)[te.XmeasAFeed]; got != 0 {
		t.Errorf("controller-view XMEAS(1) = %g, want forged 0", got)
	}
	baseA := tp.BaseXMEAS()[te.XmeasAFeed]
	if got := pd.RowView(last)[te.XmeasAFeed]; got < 1.5*baseA {
		t.Errorf("process-view XMEAS(1) = %g, want raised well above base %g", got, baseA)
	}
	xmv3 := te.NumXMEAS + te.XmvAFeed
	if got := pd.RowView(last)[xmv3]; got < 90 {
		t.Errorf("XMV(3) = %g, want driven toward 100", got)
	}
}

func TestDoSFreezesProcessSideXMV(t *testing.T) {
	tp := testTemplate(t)
	run, err := tp.NewRun(RunConfig{
		Seed: 15,
		Attacks: []attack.Spec{{
			Kind:      attack.DoS,
			Direction: attack.ActuatorLink,
			Channel:   te.XmvAFeed,
			StartHour: 2,
		}},
		Decimate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.RunHours(4); err != nil {
		t.Fatal(err)
	}
	pd := run.Views().Process.Data()
	xmv3 := te.NumXMEAS + te.XmvAFeed
	// All process-side XMV(3) samples after onset carry the same frozen
	// value.
	sps := int(3600 / 4.5) // samples per hour at the 4.5 s test step
	frozen := pd.RowView(2*sps + 5)[xmv3]
	for i := 2*sps + 5; i < pd.Rows(); i += 50 {
		if pd.RowView(i)[xmv3] != frozen {
			t.Fatalf("process-side XMV(3) changed during DoS at row %d", i)
		}
	}
	// The controller side keeps moving (noise rejection attempts).
	cd := run.Views().Controller.Data()
	varied := false
	for i := 2*sps + 5; i < cd.Rows(); i += 50 {
		if cd.RowView(i)[xmv3] != frozen {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("controller-side XMV(3) never moved during DoS")
	}
}

func TestRunConfigValidation(t *testing.T) {
	tp := testTemplate(t)
	if _, err := tp.NewRun(RunConfig{IDVs: []IDVEvent{{Index: 99}}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad IDV index: want ErrBadConfig, got %v", err)
	}
	if _, err := tp.NewRun(RunConfig{IDVs: []IDVEvent{{Index: 1, StartHour: 5, EndHour: 4}}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad IDV window: want ErrBadConfig, got %v", err)
	}
	if _, err := tp.NewRun(RunConfig{Attacks: []attack.Spec{{Kind: 99}}}); err == nil {
		t.Error("bad attack spec accepted")
	}
}

func TestRunsWithSameSeedIdentical(t *testing.T) {
	tp := testTemplate(t)
	mk := func() []float64 {
		run, err := tp.NewRun(RunConfig{Seed: 77, Decimate: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := run.RunHours(1); err != nil {
			t.Fatal(err)
		}
		d := run.Views().Process.Data()
		return d.RowView(d.Rows() - 1)
	}
	a, b := mk(), mk()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("same-seed runs differ at col %d: %g vs %g", j, a[j], b[j])
		}
	}
}
