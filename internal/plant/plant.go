// Package plant wires the full closed loop of the paper's Figure 2: the TE
// process, the decentralized controllers, the insecure fieldbus in between
// (with the attacker's MitM taps on both directions), the disturbance
// schedule, and the two-view historian.
//
// The expensive part of every experiment — warming the plant up to its
// settled operating point — is done once per Template; each experiment Run
// then clones the settled state with its own noise seed, so runs are cheap,
// independent and statistically identical under NOC.
package plant

import (
	"errors"
	"fmt"

	"pcsmon/internal/attack"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
	"pcsmon/internal/plantctl"
	"pcsmon/internal/te"
)

// Package-level sentinel errors.
var (
	// ErrBadConfig is returned for invalid configuration.
	ErrBadConfig = errors.New("plant: invalid configuration")
	// ErrWarmupFailed is returned when the plant trips during warmup.
	ErrWarmupFailed = errors.New("plant: warmup failed")
)

// Config parameterizes a Template.
type Config struct {
	// StepSeconds is the sampling interval (default 1.8 s — the paper's
	// 2000 samples/hour).
	StepSeconds float64
	// WarmupHours is the deterministic settling time before the operating
	// point is frozen (default 60 h).
	WarmupHours float64
}

// IDVEvent schedules a process disturbance: IDV index (0-based; 5 = the
// paper's IDV(6)) active from StartHour until EndHour (≤ 0 = until the
// run ends).
type IDVEvent struct {
	Index              int
	StartHour, EndHour float64
}

// Template is a warmed-up plant: settled process state plus settled
// controller state, cloneable into experiment runs.
type Template struct {
	cfg       Config
	proc      *te.Process
	ctrl      *plantctl.TEController
	baseXMEAS []float64
	baseXMV   []float64
}

// NewTemplate builds the plant and runs the deterministic warmup under
// closed-loop control, then re-centers the slow loops on the settled
// operating point.
func NewTemplate(cfg Config) (*Template, error) {
	if cfg.StepSeconds == 0 {
		cfg.StepSeconds = 1.8
	}
	if cfg.WarmupHours == 0 {
		cfg.WarmupHours = 60
	}
	if cfg.StepSeconds < 0 || cfg.WarmupHours < 0 {
		return nil, fmt.Errorf("plant: negative step or warmup: %w", ErrBadConfig)
	}
	proc, err := te.New(te.Config{
		Seed:               0,
		StepSeconds:        cfg.StepSeconds,
		NoProcessNoise:     true,
		NoMeasurementNoise: true,
	})
	if err != nil {
		return nil, fmt.Errorf("plant: process: %w", err)
	}
	ctrl, err := plantctl.NewTEController()
	if err != nil {
		return nil, fmt.Errorf("plant: controller: %w", err)
	}
	dt := cfg.StepSeconds / 3600
	steps := int(cfg.WarmupHours / dt)
	// Startup bypass: the cold-start transient may graze level interlocks;
	// they are re-armed before the template is used.
	proc.SetInterlocks(false)
	defer proc.SetInterlocks(true)
	measBuf := make([]float64, te.NumXMEAS)
	cmdBuf := make([]float64, te.NumXMV)
	for i := 0; i < steps; i++ {
		cmds, err := ctrl.StepInto(proc.MeasurementsInto(measBuf), dt, cmdBuf)
		if err != nil {
			return nil, fmt.Errorf("plant: warmup control: %w", err)
		}
		for j, v := range cmds {
			if err := proc.SetXMV(j, v); err != nil {
				return nil, fmt.Errorf("plant: warmup actuation: %w", err)
			}
		}
		if err := proc.Step(); err != nil {
			return nil, fmt.Errorf("%w at %.2f h: %v", ErrWarmupFailed, proc.Hours(), err)
		}
	}
	settled := proc.TrueMeasurements()
	if err := ctrl.Retarget(settled); err != nil {
		return nil, fmt.Errorf("plant: retarget: %w", err)
	}
	return &Template{
		cfg:       cfg,
		proc:      proc,
		ctrl:      ctrl,
		baseXMEAS: settled,
		baseXMV:   proc.XMVs(),
	}, nil
}

// BaseXMEAS returns the settled operating point (noiseless XMEAS).
func (t *Template) BaseXMEAS() []float64 {
	return append([]float64(nil), t.baseXMEAS...)
}

// BaseXMV returns the settled actuator positions.
func (t *Template) BaseXMV() []float64 {
	return append([]float64(nil), t.baseXMV...)
}

// StepSeconds returns the sampling interval of runs created from this
// template.
func (t *Template) StepSeconds() float64 { return t.cfg.StepSeconds }

// DriftSpec models gradual plant/sensor aging as seen by the monitoring
// layer: from StartHour, observation column j of BOTH recorded views is
// offset by PerHour[j]·(hour−StartHour). The offset is applied at record
// time only — identical in the two views (aging is not an attack, so it
// must never create cross-view divergence) and invisible to the control
// loop, which keeps regulating the true process.
type DriftSpec struct {
	// StartHour is when the aging begins.
	StartHour float64
	// PerHour is the additive drift rate per observation column
	// ([XMEAS(1..41), XMV(1..12)] layout, len historian.NumVars); nil
	// disables drift.
	PerHour []float64
}

func (d DriftSpec) active() bool { return len(d.PerHour) > 0 }

// RunConfig parameterizes one experiment run.
type RunConfig struct {
	// Seed drives all stochastic behaviour of this run.
	Seed int64
	// IDVs schedules process disturbances.
	IDVs []IDVEvent
	// Attacks is the adversary's plan (see attack.Spec); sensor-link specs
	// forge XMEAS toward the controller, actuator-link specs forge XMV
	// toward the process.
	Attacks []attack.Spec
	// Decimate keeps one of every N samples in the historian (≤1 keeps
	// all).
	Decimate int
	// Drift schedules gradual NOC aging of the recorded observations.
	Drift DriftSpec
}

// Run is one closed-loop simulation with optional disturbances and
// attacks.
type Run struct {
	proc  *te.Process
	ctrl  *plantctl.TEController
	link  *fieldbus.Link
	sens  *attack.Injector
	act   *attack.Injector
	views *historian.TwoView
	idvs  []IDVEvent
	drift DriftSpec
	dt    float64

	// Drift scratch: aged copies of the four recorded blocks, so the
	// control loop's own slices are never mutated.
	agedCX, agedCM, agedPX, agedPM []float64

	// Per-step scratch for the closed-loop blocks (measurement sample,
	// link deliveries, controller commands): the loop reuses them every
	// sample, so steady-state stepping performs no allocation. The
	// historian copies what it retains, so reuse is safe.
	measBuf, sensBuf, cmdBuf, actBuf []float64
}

// NewRun clones the template into a fresh run.
func (t *Template) NewRun(cfg RunConfig) (*Run, error) {
	sens, err := attack.NewInjector(attack.SensorLink, cfg.Attacks)
	if err != nil {
		return nil, fmt.Errorf("plant: sensor injector: %w", err)
	}
	act, err := attack.NewInjector(attack.ActuatorLink, cfg.Attacks)
	if err != nil {
		return nil, fmt.Errorf("plant: actuator injector: %w", err)
	}
	for _, ev := range cfg.IDVs {
		if ev.Index < 0 || ev.Index >= te.NumIDV {
			return nil, fmt.Errorf("plant: IDV index %d: %w", ev.Index, ErrBadConfig)
		}
		if ev.StartHour < 0 || (ev.EndHour > 0 && ev.EndHour <= ev.StartHour) {
			return nil, fmt.Errorf("plant: IDV window [%g,%g): %w", ev.StartHour, ev.EndHour, ErrBadConfig)
		}
	}
	if cfg.Drift.active() {
		if len(cfg.Drift.PerHour) != historian.NumVars {
			return nil, fmt.Errorf("plant: drift rates len %d, want %d: %w",
				len(cfg.Drift.PerHour), historian.NumVars, ErrBadConfig)
		}
		if cfg.Drift.StartHour < 0 {
			return nil, fmt.Errorf("plant: drift start %g: %w", cfg.Drift.StartHour, ErrBadConfig)
		}
	}
	views, err := historian.NewTwoView(cfg.Decimate)
	if err != nil {
		return nil, fmt.Errorf("plant: historian: %w", err)
	}
	proc := t.proc.Clone(cfg.Seed)
	proc.EnableNoise(true, true)
	r := &Run{
		proc:  proc,
		ctrl:  t.ctrl.Clone(),
		link:  fieldbus.NewLink(),
		sens:  sens,
		act:   act,
		views: views,
		idvs:  append([]IDVEvent(nil), cfg.IDVs...),
		drift: DriftSpec{StartHour: cfg.Drift.StartHour, PerHour: append([]float64(nil), cfg.Drift.PerHour...)},
		dt:    t.cfg.StepSeconds / 3600,
	}
	if r.drift.active() {
		r.agedCX = make([]float64, te.NumXMEAS)
		r.agedPX = make([]float64, te.NumXMEAS)
		r.agedCM = make([]float64, te.NumXMV)
		r.agedPM = make([]float64, te.NumXMV)
	}
	r.measBuf = make([]float64, te.NumXMEAS)
	r.sensBuf = make([]float64, te.NumXMEAS)
	r.cmdBuf = make([]float64, te.NumXMV)
	r.actBuf = make([]float64, te.NumXMV)
	// The attacker sits on the fieldbus: taps rewrite frames in transit.
	r.link.SetSensorTap(func(f *fieldbus.Frame) {
		r.sens.Apply(f.Values, r.proc.Hours())
	})
	r.link.SetActuatorTap(func(f *fieldbus.Frame) {
		r.act.Apply(f.Values, r.proc.Hours())
	})
	return r, nil
}

// Step advances the closed loop by one sample:
//
//	sensors → [MitM] → controller → [MitM] → actuators → process
//
// recording both views. It returns te.ErrShutdown (wrapped) once the plant
// has tripped.
func (r *Run) Step() error {
	hour := r.proc.Hours()
	// Disturbance schedule.
	for _, ev := range r.idvs {
		active := hour >= ev.StartHour && (ev.EndHour <= 0 || hour < ev.EndHour)
		if r.proc.IDV(ev.Index) != active {
			if err := r.proc.SetIDV(ev.Index, active); err != nil {
				return err
			}
		}
	}

	procXMEAS := r.proc.MeasurementsInto(r.measBuf)
	ctrlXMEAS, err := r.link.SendSensorsInto(procXMEAS, r.sensBuf)
	if err != nil {
		return fmt.Errorf("plant: sensor link: %w", err)
	}
	ctrlXMV, err := r.ctrl.StepInto(ctrlXMEAS, r.dt, r.cmdBuf)
	if err != nil {
		return fmt.Errorf("plant: control: %w", err)
	}
	procXMV, err := r.link.SendActuatorsInto(ctrlXMV, r.actBuf)
	if err != nil {
		return fmt.Errorf("plant: actuator link: %w", err)
	}
	for j, v := range procXMV {
		if err := r.proc.SetXMV(j, v); err != nil {
			return err
		}
	}
	if r.drift.active() && hour >= r.drift.StartHour {
		// Plant aging: both recorded views receive the same slow offset
		// (after the control loop consumed the true signals, so aging never
		// feeds back) — identical in the two views, so it can never mimic a
		// forged channel.
		dh := hour - r.drift.StartHour
		ctrlXMEAS = agedInto(r.agedCX, ctrlXMEAS, r.drift.PerHour[:te.NumXMEAS], dh)
		procXMEAS = agedInto(r.agedPX, procXMEAS, r.drift.PerHour[:te.NumXMEAS], dh)
		ctrlXMV = agedInto(r.agedCM, ctrlXMV, r.drift.PerHour[te.NumXMEAS:], dh)
		procXMV = agedInto(r.agedPM, procXMV, r.drift.PerHour[te.NumXMEAS:], dh)
	}
	if err := r.views.Record(ctrlXMEAS, ctrlXMV, procXMEAS, procXMV); err != nil {
		return fmt.Errorf("plant: record: %w", err)
	}
	return r.proc.Step()
}

// agedInto writes src + rates·dh into dst and returns dst.
func agedInto(dst, src, rates []float64, dh float64) []float64 {
	for j, v := range src {
		dst[j] = v + rates[j]*dh
	}
	return dst
}

// RunHours steps until the given simulated duration has elapsed or the
// plant shuts down. It reports whether the run completed without a trip.
func (r *Run) RunHours(hours float64) (completed bool, err error) {
	for r.proc.Hours() < hours {
		if err := r.Step(); err != nil {
			if errors.Is(err, te.ErrShutdown) {
				return false, nil
			}
			return false, err
		}
	}
	return true, nil
}

// Views returns the two-view historian of this run.
func (r *Run) Views() *historian.TwoView { return r.views }

// Hours returns the simulated time.
func (r *Run) Hours() float64 { return r.proc.Hours() }

// Shutdown reports whether the plant tripped.
func (r *Run) Shutdown() bool { return r.proc.Shutdown() }

// ShutdownReason returns the interlock message, or "".
func (r *Run) ShutdownReason() string { return r.proc.ShutdownReason() }

// Process exposes the underlying process (read-only use intended).
func (r *Run) Process() *te.Process { return r.proc }
