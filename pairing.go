package pcsmon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
	"pcsmon/internal/pairing"
)

// PairingStats is a snapshot of a pairing ingest's frame accounting (see
// the conservation invariant documented on the engine type).
type PairingStats = pairing.Stats

// PairDropped reports that live pairing lost data: an observation scored
// with one view synthesized by hold-last-value, a sequence-number gap, or
// a duplicate/stale frame that was discarded. Plain single-view operation
// (a unit whose second view has never been seen) is not reported — only
// genuinely missing data is.
type PairDropped struct {
	// Unit is the fieldbus unit id; Seq the affected sequence number (for
	// gaps, the first missing one).
	Unit uint8
	Seq  uint64
	// Kind is "orphan-sensor", "orphan-actuator", "gap", "duplicate",
	// "stale", "seq-outlier" (a quarantined implausible sequence jump) or
	// "epoch-reset" (the unit's sequence numbering restarted — a collector
	// restart; Seq is the new epoch's first sequence number).
	Kind string
	// Span is the number of consecutive missing observations of a gap.
	Span uint64
	// Held reports that the observation was still scored, with the missing
	// view's row held at its last delivered value.
	Held bool
}

// ViewStalled reports that one view of one unit has produced only
// hold-last orphans for the configured number of consecutive observations
// — the systematic one-view blackout that is DoS-consistent evidence. The
// stream keeps being scored with held rows, so the analyzer's
// frozen/diverged machinery turns the blackout into a dos-attack verdict
// instead of silently downgrading to single-view monitoring.
type ViewStalled struct {
	Unit uint8
	// Seq is the observation at which the stall threshold was crossed.
	Seq uint64
	// View is "sensor" (controller-view frames missing) or "actuator"
	// (process-view frames missing).
	View string
}

func (PairDropped) streamEvent() {}
func (ViewStalled) streamEvent() {}

// PairingOptions tunes a pairing ingest.
type PairingOptions struct {
	// Window is the reorder depth in sequence numbers per unit (0 = 64):
	// how far frames may arrive out of order before the oldest pending
	// observation is forced out as an orphan.
	Window int
	// Timeout is the age horizon: a Tick flushes observations whose first
	// frame arrived longer ago than this (0 = no horizon; only window
	// overflow and Flush evict).
	Timeout time.Duration
	// StallAfter is the number of consecutive hold-last orphans of one
	// view before a ViewStalled event fires (0 = 8, < 0 disables).
	StallAfter int
	// Onset is the observation index at which an anomaly is known to begin
	// for attached units (0 if unknown), as in Fleet.Attach.
	Onset int
	// OnsetFor, if non-nil, overrides Onset per unit at attach time — the
	// control plane's per-unit config hook. Returning a negative value
	// falls back to Onset.
	OnsetFor func(unit uint8) int
	// OnAttach, if non-nil, observes every unit's first-sight attachment.
	OnAttach func(plant string)
	// Clock overrides the arrival-timestamp source the Timeout horizon is
	// measured against (nil = wall clock). Capture replay maps the capture
	// timeline through it, so Timeout keeps meaning capture time at any
	// speed-up.
	Clock func() time.Time
	// Dedup, when positive, suppresses content-identical frames arriving
	// more than once within a sliding window of that many frames — the
	// redundant-collector deployment, where two taps on the same wire both
	// forward every frame and the naive ingest would score each second copy
	// as a Duplicate. Suppression is by content hash (type, unit, seq, raw
	// value bits), so a copy whose values were tampered with still reaches
	// the correlator. Applies to the frame-level entry points (OfferFrame,
	// OfferBytes); the row-level OfferSensor/OfferActuator bypass it
	// (0 = off).
	Dedup int
}

// PairingIngest is the live two-view front of a Fleet: it correlates
// sensor frames (controller-view rows) and actuator frames (process-view
// rows) by (unit, sequence number) and pushes the paired observations into
// the fleet, so socket feeds get the full cross-view diagnosis. Units
// attach on first sight as plant PlantID(unit).
//
// Offer methods are safe for concurrent use (the fieldbus server calls
// them from per-connection goroutines); outcomes of one unit are scored in
// sequence order.
type PairingIngest struct {
	fl   *Fleet
	cor  *pairing.Correlator
	opts PairingOptions
	emit func(FleetEvent)

	scratchMu sync.Mutex // guards the OfferBytes decode scratch
	frame     fieldbus.Frame

	dedupMu sync.Mutex // guards dedup (Offer methods are concurrent)
	dedup   *fieldbus.FrameDedup

	stateMu  sync.Mutex // guards attached/listed/plants; held across pool attach/detach to serialize API calls with first-sight attachment
	attached [256]bool
	listed   [256]bool // dedups plants across detach/re-attach cycles
	plants   []string

	// quiesced marks units whose frames are dropped at the door (and on
	// residual correlator outcomes) — the per-unit drain state. Lock-free
	// so the hot ingest path never takes stateMu.
	quiesced      [256]atomic.Bool
	quiescedDrops atomic.Uint64
}

// plantIDs holds the 256 possible plant ids; PlantID is called once per
// paired observation on the scoring hot path, so it must not format.
var plantIDs = func() (ids [256]string) {
	for i := range ids {
		ids[i] = fmt.Sprintf("unit-%03d", i)
	}
	return
}()

// PlantID returns the fleet plant id of a fieldbus unit ("unit-007").
func PlantID(unit uint8) string { return plantIDs[unit] }

// NewPairingIngest builds the pairing front over the fleet. emit — if
// non-nil — receives the typed PairDropped/ViewStalled pairing events
// (observation scoring flows through the fleet's own event channel as
// usual).
func (f *Fleet) NewPairingIngest(opts PairingOptions, emit func(FleetEvent)) (*PairingIngest, error) {
	if opts.Window < 0 || opts.Timeout < 0 || opts.Onset < 0 || opts.Dedup < 0 {
		return nil, fmt.Errorf("pcsmon: pairing window %d, timeout %v, onset %d, dedup %d: %w",
			opts.Window, opts.Timeout, opts.Onset, opts.Dedup, ErrBadConfig)
	}
	pi := &PairingIngest{fl: f, opts: opts, emit: emit}
	if opts.Dedup > 0 {
		d, err := fieldbus.NewFrameDedup(opts.Dedup)
		if err != nil {
			return nil, fmt.Errorf("pcsmon: %w", err)
		}
		pi.dedup = d
	}
	cor, err := pairing.NewCorrelator(pairing.Config{
		Cols:       historian.NumVars,
		Window:     opts.Window,
		MaxAge:     opts.Timeout,
		StallAfter: opts.StallAfter,
		Clock:      opts.Clock,
	}, pi.route)
	if err != nil {
		return nil, fmt.Errorf("pcsmon: %w", err)
	}
	pi.cor = cor
	if f.obs != nil && f.obs.Metrics != nil {
		if err := pi.registerPairing(f.obs.Metrics); err != nil {
			return nil, err
		}
	}
	return pi, nil
}

// unitHealth returns the unit's health handle (nil when observability is
// off or the unit has not attached yet).
func (pi *PairingIngest) unitHealth(unit uint8) *UnitHealth {
	if pi.fl.obs == nil || pi.fl.obs.Health == nil {
		return nil
	}
	return pi.fl.obs.Health.Get(PlantID(unit))
}

// route converts one correlation outcome into fleet traffic: scoreable
// outcomes attach-on-first-sight and push, loss outcomes surface as typed
// events. It runs under the correlator's lock, so per-unit order holds.
func (pi *PairingIngest) route(ev pairing.Event) error {
	if pi.quiesced[ev.Unit].Load() {
		// Residual outcome of a drained unit (the frame was already inside
		// the correlator when the drain landed): drop, don't resurrect.
		pi.quiescedDrops.Add(1)
		return nil
	}
	switch ev.Outcome {
	case pairing.Paired, pairing.OrphanSensor, pairing.OrphanActuator:
		id, err := pi.plant(ev.Unit)
		if err != nil {
			return err
		}
		if ev.Held {
			if hp := pi.unitHealth(ev.Unit); hp != nil {
				hp.AddHeld(1)
			}
			pi.send(FleetEvent{Plant: id, Event: PairDropped{
				Unit: ev.Unit, Seq: ev.Seq, Kind: ev.Outcome.String(), Held: true,
			}})
		}
		if err := pi.fl.pool.Push(id, ev.Ctrl, ev.Proc); err != nil {
			if !errors.Is(err, ErrUnknownPlant) {
				return err
			}
			// A concurrent DetachUnit removed the stream between the attach
			// check and the push. Re-attach fresh and retry once — the
			// control-plane contract is that detach+re-attach mid-stream
			// never poisons the ingest.
			pi.stateMu.Lock()
			pi.attached[ev.Unit] = false
			pi.stateMu.Unlock()
			if id, err = pi.plant(ev.Unit); err != nil {
				return err
			}
			return pi.fl.pool.Push(id, ev.Ctrl, ev.Proc)
		}
		return nil
	case pairing.GapDetected, pairing.Duplicate, pairing.Stale, pairing.Outlier, pairing.EpochReset:
		if hp := pi.unitHealth(ev.Unit); hp != nil {
			n := ev.Span
			if n == 0 {
				n = 1
			}
			hp.AddDropped(n)
		}
		pi.send(FleetEvent{Plant: PlantID(ev.Unit), Event: PairDropped{
			Unit: ev.Unit, Seq: ev.Seq, Kind: ev.Outcome.String(), Span: ev.Span,
		}})
	case pairing.ViewStalled:
		pi.send(FleetEvent{Plant: PlantID(ev.Unit), Event: ViewStalled{
			Unit: ev.Unit, Seq: ev.Seq, View: ev.View.String(),
		}})
	}
	return nil
}

// plant returns the unit's plant id, attaching it on first sight. The
// pool attach runs under stateMu so first-sight attachment, AttachUnit
// and DetachUnit serialize instead of racing on the pool registry.
func (pi *PairingIngest) plant(unit uint8) (string, error) {
	id := PlantID(unit)
	pi.stateMu.Lock()
	if pi.attached[unit] {
		pi.stateMu.Unlock()
		return id, nil
	}
	if err := pi.fl.pool.Attach(id, pi.onset(unit)); err != nil {
		pi.stateMu.Unlock()
		return "", err
	}
	pi.attached[unit] = true
	if !pi.listed[unit] {
		pi.listed[unit] = true
		pi.plants = append(pi.plants, id)
	}
	pi.stateMu.Unlock()
	if pi.opts.OnAttach != nil {
		pi.opts.OnAttach(id)
	}
	return id, nil
}

// onset resolves the attach-time onset index of a unit.
func (pi *PairingIngest) onset(unit uint8) int {
	if pi.opts.OnsetFor != nil {
		if o := pi.opts.OnsetFor(unit); o >= 0 {
			return o
		}
	}
	return pi.opts.Onset
}

// AttachUnit attaches a unit's plant stream ahead of its first frame and
// clears any drain mark — the control plane's POST /units/{id}/attach.
// Attaching an already-live unit returns ErrDuplicatePlant.
func (pi *PairingIngest) AttachUnit(unit uint8) error {
	pi.quiesced[unit].Store(false)
	id := PlantID(unit)
	pi.stateMu.Lock()
	defer pi.stateMu.Unlock()
	if pi.attached[unit] {
		return fmt.Errorf("pcsmon: unit %d (%s): %w", unit, id, ErrDuplicatePlant)
	}
	if err := pi.fl.pool.Attach(id, pi.onset(unit)); err != nil {
		return fmt.Errorf("pcsmon: %w", err)
	}
	pi.attached[unit] = true
	if !pi.listed[unit] {
		pi.listed[unit] = true
		pi.plants = append(pi.plants, id)
	}
	if pi.opts.OnAttach != nil {
		//pcslint:ignore callback-under-lock -- holding stateMu serializes the hook with attach/detach ordering: OnAttach must be observed before any detach for the same unit can interleave; hooks are wiring-time notifications that must not re-enter the ingest
		pi.opts.OnAttach(id)
	}
	return nil
}

// DetachUnit finalizes a unit's stream and returns its classified report
// — the control plane's POST /units/{id}/detach. The unit re-attaches
// fresh (new stream state) on its next frame; detaching an unknown unit
// returns ErrUnknownPlant.
func (pi *PairingIngest) DetachUnit(unit uint8) (*Report, error) {
	id := PlantID(unit)
	pi.stateMu.Lock()
	defer pi.stateMu.Unlock()
	if !pi.attached[unit] {
		return nil, fmt.Errorf("pcsmon: unit %d (%s): %w", unit, id, ErrUnknownPlant)
	}
	pi.attached[unit] = false
	rep, err := pi.fl.pool.Detach(id)
	if err != nil {
		return nil, fmt.Errorf("pcsmon: %w", err)
	}
	return rep, nil
}

// DrainUnit quiesces a unit — frames arriving after the call are dropped
// at the door (counted by QuiescedDrops) — then finalizes its stream and
// returns the report: the control plane's POST /units/{id}/drain.
// AttachUnit lifts the quiesce mark.
func (pi *PairingIngest) DrainUnit(unit uint8) (*Report, error) {
	pi.quiesced[unit].Store(true)
	return pi.DetachUnit(unit)
}

// QuiescedDrops counts frames dropped because their unit was drained.
func (pi *PairingIngest) QuiescedDrops() uint64 { return pi.quiescedDrops.Load() }

func (pi *PairingIngest) send(ev FleetEvent) {
	if pi.emit != nil {
		pi.emit(ev)
	}
}

// OfferSensor ingests one sensor frame: the controller-view row of (unit,
// seq). The row is copied before return.
func (pi *PairingIngest) OfferSensor(unit uint8, seq uint64, row []float64) error {
	if pi.quiesced[unit].Load() {
		pi.quiescedDrops.Add(1)
		return nil
	}
	return pi.wrap(pi.cor.Offer(fieldbus.FrameSensor, unit, seq, row))
}

// OfferActuator ingests one actuator frame: the process-view row of
// (unit, seq).
func (pi *PairingIngest) OfferActuator(unit uint8, seq uint64, row []float64) error {
	if pi.quiesced[unit].Load() {
		pi.quiescedDrops.Add(1)
		return nil
	}
	return pi.wrap(pi.cor.Offer(fieldbus.FrameActuator, unit, seq, row))
}

// OfferFrame ingests one decoded fieldbus frame when it is a full-width
// observation frame, reporting whether it was ingested. Non-observation
// traffic — wrong row width, unknown frame type — is skipped as (false,
// nil). This is the one demux rule every transport shares (TCP listener,
// UDP listener, capture replay), so the live ingest and the replay path
// cannot drift apart.
func (pi *PairingIngest) OfferFrame(f *fieldbus.Frame) (bool, error) {
	if f == nil || len(f.Values) != historian.NumVars {
		return false, nil
	}
	switch f.Type {
	case fieldbus.FrameSensor, fieldbus.FrameActuator:
		if pi.quiesced[f.Unit].Load() {
			pi.quiescedDrops.Add(1)
			return false, nil
		}
		if pi.redundant(f) {
			return false, nil
		}
		return true, pi.wrap(pi.cor.Offer(f.Type, f.Unit, f.Seq, f.Values))
	}
	return false, nil
}

// redundant applies the configured dedup window; a suppressed frame is
// counted (Deduped) but never reaches the correlator, so a redundant
// collector's second copy cannot inflate Duplicate counts — or refresh
// idle/progress probes keyed on ingested frames.
func (pi *PairingIngest) redundant(f *fieldbus.Frame) bool {
	if pi.dedup == nil {
		return false
	}
	pi.dedupMu.Lock()
	defer pi.dedupMu.Unlock()
	return pi.dedup.Redundant(f)
}

// Deduped returns the number of frames suppressed by the Dedup window.
func (pi *PairingIngest) Deduped() uint64 {
	if pi.dedup == nil {
		return 0
	}
	pi.dedupMu.Lock()
	defer pi.dedupMu.Unlock()
	return pi.dedup.Dropped()
}

// OfferBytes decodes one marshalled fieldbus frame (the wire format of
// internal/fieldbus) and ingests it — the entry point for callers holding
// raw frame bytes rather than decoded values.
func (pi *PairingIngest) OfferBytes(data []byte) error {
	pi.scratchMu.Lock()
	defer pi.scratchMu.Unlock()
	if err := pi.frame.UnmarshalInto(data); err != nil {
		return fmt.Errorf("pcsmon: %w", err)
	}
	if pi.quiesced[pi.frame.Unit].Load() {
		pi.quiescedDrops.Add(1)
		return nil
	}
	if pi.redundant(&pi.frame) {
		return nil
	}
	return pi.wrap(pi.cor.OfferFrame(&pi.frame))
}

// Tick applies the age horizon: observations older than Timeout are
// flushed as orphans/gaps. A zero Timeout makes it a no-op.
func (pi *PairingIngest) Tick(now time.Time) error { return pi.wrap(pi.cor.Tick(now)) }

// Flush drains every pending observation as if its missing frames will
// never arrive (end of input). The ingest stays usable.
func (pi *PairingIngest) Flush() error { return pi.wrap(pi.cor.Flush()) }

// Close flushes and rejects further frames. The fleet itself stays open —
// detach its plants (Plants) or close it separately.
func (pi *PairingIngest) Close() error { return pi.wrap(pi.cor.Close()) }

// Stats snapshots the pairing accounting.
func (pi *PairingIngest) Stats() PairingStats { return pi.cor.Stats() }

// StepCount returns the number of distinct (unit, seq) observations seen,
// lock-free — the cheap per-frame progress probe for ingestion caps.
func (pi *PairingIngest) StepCount() uint64 { return pi.cor.StepCount() }

// Plants lists the plant ids attached by this ingest, in attachment order.
func (pi *PairingIngest) Plants() []string {
	pi.stateMu.Lock()
	defer pi.stateMu.Unlock()
	return append([]string(nil), pi.plants...)
}

func (pi *PairingIngest) wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("pcsmon: %w", err)
}
