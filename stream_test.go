package pcsmon_test

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"pcsmon"
)

// TestStreamScenarioMatchesBatch: the facade's streaming path over the
// same seeded run must reproduce the batch result, while emitting a
// well-formed event stream (samples in order, alarms once, verdict last).
func TestStreamScenarioMatchesBatch(t *testing.T) {
	l := testLab(t)
	sc := pcsmon.PaperScenarios(3)[1] // integrity on XMV(3)
	batch, err := l.RunScenarioFor(sc, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	var (
		samples, alarms int
		verdicts        int
		lastIdx         = -1
		sawVerdict      *pcsmon.Report
	)
	rep, err := l.StreamScenario(sc, pcsmon.StreamOptions{Hours: 10}, func(ev pcsmon.StreamEvent) {
		switch e := ev.(type) {
		case pcsmon.SampleScored:
			if sawVerdict != nil {
				t.Fatal("SampleScored after VerdictReady")
			}
			if e.Index != lastIdx+1 {
				t.Fatalf("sample index %d after %d", e.Index, lastIdx)
			}
			lastIdx = e.Index
			samples++
		case pcsmon.AlarmRaised:
			if e.View != "controller" && e.View != "process" {
				t.Fatalf("alarm view %q", e.View)
			}
			if len(e.Charts) == 0 {
				t.Error("alarm without charts")
			}
			alarms++
		case pcsmon.VerdictReady:
			verdicts++
			sawVerdict = e.Report
			if e.Samples != samples {
				t.Errorf("verdict reports %d samples, saw %d", e.Samples, samples)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts != 1 || sawVerdict != rep {
		t.Fatalf("VerdictReady emitted %d times (report match %v)", verdicts, sawVerdict == rep)
	}
	if alarms == 0 {
		t.Error("no alarms on an attacked run")
	}
	if !reflect.DeepEqual(rep, batch.Runs[0].Report) {
		t.Errorf("streaming report differs from batch:\nbatch:  %+v\nstream: %+v",
			batch.Runs[0].Report, rep)
	}
}

// TestStreamScenarioEarlyStop: the early-stop option halts the simulation
// and still classifies the attack correctly.
func TestStreamScenarioEarlyStop(t *testing.T) {
	l := testLab(t)
	sc := pcsmon.PaperScenarios(3)[1]
	var stopped bool
	var samples int
	rep, err := l.StreamScenario(sc, pcsmon.StreamOptions{
		Hours:     10,
		EarlyStop: true,
		EmitEvery: -1, // alarms and verdict only
	}, func(ev pcsmon.StreamEvent) {
		if e, ok := ev.(pcsmon.VerdictReady); ok {
			stopped = e.Stopped
			samples = e.Samples
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Error("early-stop run did not stop early")
	}
	full, err := l.RunScenarioFor(sc, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if samples >= full.Runs[0].Samples {
		t.Errorf("early stop scored %d samples, full run %d", samples, full.Runs[0].Samples)
	}
	if rep.Verdict != pcsmon.VerdictIntegrityAttack {
		t.Errorf("verdict %v (%s), want integrity-attack", rep.Verdict, rep.Explanation)
	}
}

// TestStreamFeed drives the package-level Stream facade with an in-memory
// feed built from a simulated run's recorded views.
func TestStreamFeed(t *testing.T) {
	l := testLab(t)
	sc := pcsmon.PaperScenarios(3)[0] // IDV(6)
	batch, err := l.RunScenarioFor(sc, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the exact run the batch path analyzed and replay it.
	out, err := l.StreamScenario(sc, pcsmon.StreamOptions{Hours: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, batch.Runs[0].Report) {
		t.Fatal("fixture mismatch; cannot test feed")
	}
	// A trivial single-view feed: three identical NOC rows then EOF.
	row := make([]float64, pcsmon.NumVars)
	base := l.Template.BaseXMEAS()
	copy(row, base)
	xmv := l.Template.BaseXMV()
	copy(row[len(base):], xmv)
	n := 0
	rep, err := pcsmon.Stream(l.System, 0, 9*time.Second, func() (ctrl, proc []float64, err error) {
		if n >= 50 {
			return nil, nil, io.EOF
		}
		n++
		return row, row, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != pcsmon.VerdictNormal {
		t.Errorf("steady-state feed classified %v (%s)", rep.Verdict, rep.Explanation)
	}
}

// TestStreamBackPressureSlowConsumer: with a buffered emitter, a handler
// that sleeps must not cause any SampleScored/AlarmRaised/VerdictReady
// event to be dropped or reordered — the buffer only decouples the plant
// loop from the consumer; once it fills, back-pressure stalls the producer
// instead of losing events. The slow run's event sequence must be
// element-for-element identical to a synchronous run of the same seed.
func TestStreamBackPressureSlowConsumer(t *testing.T) {
	l := testLab(t)
	sc := pcsmon.PaperScenarios(3)[1] // integrity on XMV(3)

	var baseline []pcsmon.StreamEvent
	baseRep, err := l.StreamScenario(sc, pcsmon.StreamOptions{Hours: 8}, func(ev pcsmon.StreamEvent) {
		baseline = append(baseline, ev)
	})
	if err != nil {
		t.Fatal(err)
	}

	var slow []pcsmon.StreamEvent
	slowRep, err := l.StreamScenario(sc, pcsmon.StreamOptions{
		Hours:       8,
		EventBuffer: 16, // much smaller than the event count: the buffer must fill
	}, func(ev pcsmon.StreamEvent) {
		time.Sleep(20 * time.Microsecond) // slower than the plant produces
		slow = append(slow, ev)
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(slow) != len(baseline) {
		t.Fatalf("slow consumer saw %d events, synchronous run %d — events were dropped",
			len(slow), len(baseline))
	}
	lastIdx := -1
	for i, ev := range slow {
		if !reflect.DeepEqual(ev, baseline[i]) {
			t.Fatalf("event %d reordered or altered:\nslow: %+v\nbase: %+v", i, ev, baseline[i])
		}
		if s, ok := ev.(pcsmon.SampleScored); ok {
			if s.Index != lastIdx+1 {
				t.Fatalf("sample index %d after %d", s.Index, lastIdx)
			}
			lastIdx = s.Index
		}
	}
	if _, ok := slow[len(slow)-1].(pcsmon.VerdictReady); !ok {
		t.Errorf("last event %T, want VerdictReady", slow[len(slow)-1])
	}
	if !reflect.DeepEqual(slowRep, baseRep) {
		t.Error("buffered-emitter run produced a different report")
	}
	alarms := 0
	for _, ev := range slow {
		if _, ok := ev.(pcsmon.AlarmRaised); ok {
			alarms++
		}
	}
	if alarms == 0 {
		t.Error("no alarms in the slow-consumer event stream")
	}
}

// TestLabConfigValidation covers the facade's config validation satellite.
func TestLabConfigValidation(t *testing.T) {
	cases := []pcsmon.LabConfig{
		{StepSeconds: -3},
		{WarmupHours: -1},
		{CalibrationRuns: -2},
		{CalibrationHours: -5},
		{Decimate: -1},
	}
	for _, cfg := range cases {
		if _, err := pcsmon.NewLab(cfg); !errors.Is(err, pcsmon.ErrBadConfig) {
			t.Errorf("%+v: want ErrBadConfig, got %v", cfg, err)
		}
	}
}
