package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDosDetectionEndToEnd runs the example in-process with a short
// horizon and asserts a DoS verdict and the run-length contrast surface
// in the output.
func TestDosDetectionEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2, 16); err != nil {
		t.Fatalf("dos-detection: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"integrity-attack×2",
		"dos-attack",
		"DoS detection is an order of magnitude slower",
		"report: dos-attack",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
