// DoS-detection: the paper's scenario (d) — a hold-last-value denial of
// service on the XMV(3) actuator link. Detection is far slower than for
// integrity attacks (the process sits near its operating point while the
// controller's corrections silently go nowhere), and the oMEDA diagnosis
// is diffuse. The example contrasts the DoS run length with an integrity
// attack on the same channel and prints the freeze evidence.
//
//	go run ./examples/dos-detection
package main

import (
	"fmt"
	"os"

	"pcsmon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dos-detection:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("building lab…")
	lab, err := pcsmon.NewLab(pcsmon.LabConfig{
		CalibrationRuns:  3,
		CalibrationHours: 16,
		Seed:             11,
	})
	if err != nil {
		return err
	}

	const onset = 4.0
	scs := pcsmon.PaperScenarios(onset)
	integrity, dos := scs[1], scs[3]

	fmt.Printf("\nrunning %s…\n", integrity.Name)
	ri, err := lab.RunScenarioFor(integrity, 2, 16)
	if err != nil {
		return err
	}
	fmt.Printf("running %s…\n", dos.Name)
	rd, err := lab.RunScenarioFor(dos, 2, 16)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-28s %-16s %-14s\n", "scenario", "mean run length", "verdicts")
	fmt.Printf("%-28s %-16v %v\n", "integrity on XMV(3)", ri.MeanRunLength, counts(ri))
	fmt.Printf("%-28s %-16v %v\n", "DoS on XMV(3)", rd.MeanRunLength, counts(rd))
	if rd.MeanRunLength > 4*ri.MeanRunLength {
		fmt.Println("\nDoS detection is an order of magnitude slower — the paper's headline ARL result.")
	}

	rep := rd.Runs[0].Report
	fmt.Printf("\nDoS run 1 report: %s\n  %s\n", rep.Verdict, rep.Explanation)
	if len(rep.FrozenProc) > 0 {
		fmt.Print("  frozen process-side channels:")
		for _, j := range rep.FrozenProc {
			fmt.Printf(" %s", pcsmon.VarName(j))
		}
		fmt.Println()
	}
	fmt.Printf("  controller-view dominance %.1f, process-view dominance %.1f\n",
		rep.Controller.Dominance, rep.Process.Dominance)
	return nil
}

func counts(r *pcsmon.ScenarioResult) string {
	out := ""
	for v, n := range r.Verdicts {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s×%d", v, n)
	}
	return out
}
