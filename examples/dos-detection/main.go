// DoS-detection: the paper's scenario (d) — a hold-last-value denial of
// service on the XMV(3) actuator link. Detection is far slower than for
// integrity attacks (the process sits near its operating point while the
// controller's corrections silently go nowhere), and the oMEDA diagnosis
// is diffuse. The example contrasts the DoS run length with an integrity
// attack on the same channel and prints the freeze evidence.
//
//	go run ./examples/dos-detection
package main

import (
	"fmt"
	"io"
	"os"

	"pcsmon"
)

func main() {
	if err := run(os.Stdout, 2, 16); err != nil {
		fmt.Fprintln(os.Stderr, "dos-detection:", err)
		os.Exit(1)
	}
}

// run contrasts the integrity and DoS scenarios over runs repetitions of
// hours each (the end-to-end test uses a single shorter run).
func run(w io.Writer, runs int, hours float64) error {
	fmt.Fprintln(w, "building lab…")
	lab, err := pcsmon.NewLab(pcsmon.LabConfig{
		CalibrationRuns:  3,
		CalibrationHours: 16,
		Seed:             11,
	})
	if err != nil {
		return err
	}

	const onset = 4.0
	scs := pcsmon.PaperScenarios(onset)
	integrity, dos := scs[1], scs[3]

	fmt.Fprintf(w, "\nrunning %s…\n", integrity.Name)
	ri, err := lab.RunScenarioFor(integrity, runs, hours)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "running %s…\n", dos.Name)
	rd, err := lab.RunScenarioFor(dos, runs, hours)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n%-28s %-16s %-14s\n", "scenario", "mean run length", "verdicts")
	fmt.Fprintf(w, "%-28s %-16v %v\n", "integrity on XMV(3)", ri.MeanRunLength, counts(ri))
	fmt.Fprintf(w, "%-28s %-16v %v\n", "DoS on XMV(3)", rd.MeanRunLength, counts(rd))
	if rd.MeanRunLength > 4*ri.MeanRunLength {
		fmt.Fprintln(w, "\nDoS detection is an order of magnitude slower — the paper's headline ARL result.")
	}

	// Show the evidence from a run the classifier called a DoS (individual
	// runs can read as a disturbance when the freeze evidence is weak —
	// the ARL contrast above is the robust signature).
	show := 0
	for i, r := range rd.Runs {
		if r.Report.Verdict == pcsmon.VerdictDoS {
			show = i
			break
		}
	}
	rep := rd.Runs[show].Report
	fmt.Fprintf(w, "\nDoS run %d report: %s\n  %s\n", show+1, rep.Verdict, rep.Explanation)
	if len(rep.FrozenProc) > 0 {
		fmt.Fprint(w, "  frozen process-side channels:")
		for _, j := range rep.FrozenProc {
			fmt.Fprintf(w, " %s", pcsmon.VarName(j))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  controller-view dominance %.1f, process-view dominance %.1f\n",
		rep.Controller.Dominance, rep.Process.Dominance)
	return nil
}

func counts(r *pcsmon.ScenarioResult) string {
	out := ""
	for v, n := range r.Verdicts {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s×%d", v, n)
	}
	return out
}
