package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartEndToEnd runs the example in-process with a short horizon
// and asserts it completes (exit 0 in CLI terms) with the expected
// verdict keywords in its output.
func TestQuickstartEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 1, 10); err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"calibrated:",
		"running scenario: Disturbance IDV(6)",
		"verdict=disturbance",
		"scenario summary:",
		"correct verdicts 100%",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
