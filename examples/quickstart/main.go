// Quickstart: build a lab (plant + calibrated two-view MSPC monitor), run
// the paper's IDV(6) disturbance scenario and print the detection and
// diagnosis report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"pcsmon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("building lab: warming up the Tennessee-Eastman plant and calibrating MSPC…")
	lab, err := pcsmon.NewLab(pcsmon.LabConfig{
		// Small, laptop-friendly calibration; see LabConfig for the
		// paper-scale settings.
		CalibrationRuns:  3,
		CalibrationHours: 12,
		Seed:             1,
	})
	if err != nil {
		return err
	}
	mon := lab.System.Monitor()
	fmt.Printf("calibrated: %d principal components, D99=%.1f, Q99=%.1f\n\n",
		mon.Model().NComponents(), mon.Limits().D99, mon.Limits().Q99)

	// Scenario (a) of the paper: disturbance IDV(6), anomaly at hour 4.
	sc := pcsmon.PaperScenarios(4)[0]
	fmt.Printf("running scenario: %s\n", sc.Name)
	res, err := lab.RunScenarioFor(sc, 3, 12)
	if err != nil {
		return err
	}

	for i, run := range res.Runs {
		rep := run.Report
		fmt.Printf("\nrun %d: verdict=%s\n", i+1, rep.Verdict)
		fmt.Printf("  %s\n", rep.Explanation)
		if rep.Controller.Detected {
			fmt.Printf("  controller view: detected after %v; top variable %s\n",
				rep.Controller.Time, pcsmon.VarName(rep.Controller.Top[0]))
		}
		if run.Shutdown {
			fmt.Printf("  plant shut down at %.2f h\n", run.ShutdownHour)
		}
	}
	fmt.Printf("\nscenario summary: detection rate %.0f%%, mean run length %v, correct verdicts %.0f%%\n",
		res.DetectionRate*100, res.MeanRunLength, res.Correct*100)
	return nil
}
