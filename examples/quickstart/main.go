// Quickstart: build a lab (plant + calibrated two-view MSPC monitor), run
// the paper's IDV(6) disturbance scenario and print the detection and
// diagnosis report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"pcsmon"
)

func main() {
	if err := run(os.Stdout, 3, 12); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run executes the quickstart: runs scenario repetitions of hours each
// (the end-to-end test uses a shorter horizon than the CLI default).
func run(w io.Writer, runs int, hours float64) error {
	fmt.Fprintln(w, "building lab: warming up the Tennessee-Eastman plant and calibrating MSPC…")
	lab, err := pcsmon.NewLab(pcsmon.LabConfig{
		// Small, laptop-friendly calibration; see LabConfig for the
		// paper-scale settings.
		CalibrationRuns:  3,
		CalibrationHours: 12,
		Seed:             1,
	})
	if err != nil {
		return err
	}
	mon := lab.System.Monitor()
	fmt.Fprintf(w, "calibrated: %d principal components, D99=%.1f, Q99=%.1f\n\n",
		mon.Model().NComponents(), mon.Limits().D99, mon.Limits().Q99)

	// Scenario (a) of the paper: disturbance IDV(6), anomaly at hour 4.
	sc := pcsmon.PaperScenarios(4)[0]
	fmt.Fprintf(w, "running scenario: %s\n", sc.Name)
	res, err := lab.RunScenarioFor(sc, runs, hours)
	if err != nil {
		return err
	}

	for i, run := range res.Runs {
		rep := run.Report
		fmt.Fprintf(w, "\nrun %d: verdict=%s\n", i+1, rep.Verdict)
		fmt.Fprintf(w, "  %s\n", rep.Explanation)
		if rep.Controller.Detected {
			fmt.Fprintf(w, "  controller view: detected after %v; top variable %s\n",
				rep.Controller.Time, pcsmon.VarName(rep.Controller.Top[0]))
		}
		if run.Shutdown {
			fmt.Fprintf(w, "  plant shut down at %.2f h\n", run.ShutdownHour)
		}
	}
	fmt.Fprintf(w, "\nscenario summary: detection rate %.0f%%, mean run length %v, correct verdicts %.0f%%\n",
		res.DetectionRate*100, res.MeanRunLength, res.Correct*100)
	return nil
}
