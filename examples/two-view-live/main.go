// Two-view-live: the paper's monitoring topology end to end over real TCP
// sockets, through the two-view pairing ingest.
//
// Two collectors observe the same plant from the two ends of an insecure
// fieldbus with a man-in-the-middle on the actuator link:
//
//   - the controller-side collector reports what the controller believes —
//     the XMEAS it received and the XMV it commanded — as sensor frames;
//   - the plant-side collector reports what the process experienced — the
//     XMEAS the sensors produced and the XMV the actuators received
//     (forged mid-stream: the MitM forces XMV(3) to zero) — as actuator
//     frames.
//
// Both frame streams travel over separate TCP connections to the monitor,
// which correlates them by (unit, sequence number) into paired two-view
// observations and scores them through the fleet engine. The cross-view
// diagnosis concludes what no single view can: the two views *disagree*
// about XMV(3), so the channel is forged — an integrity attack, not a
// disturbance.
//
//	go run ./examples/two-view-live
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"pcsmon"
	"pcsmon/internal/core"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
	"pcsmon/internal/te"
)

func main() {
	if err := run(os.Stdout, 260, 130); err != nil {
		fmt.Fprintln(os.Stderr, "two-view-live:", err)
		os.Exit(1)
	}
}

// run streams samples observations, arming the MitM at step armAt.
func run(w io.Writer, samples, armAt int) error {
	const xmv3 = te.NumXMEAS + te.XmvAFeed // XMV(3) observation column

	// A quick synthetic plant stands in for the TE simulator so the demo
	// runs in milliseconds: correlated NOC rows around an operating point.
	m := historian.NumVars
	loadings := make([]float64, m)
	lr := rand.New(rand.NewSource(99))
	for j := range loadings {
		loadings[j] = lr.NormFloat64()
	}
	rng := rand.New(rand.NewSource(7))
	noc := func() []float64 {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*loadings[j] + 0.3*rng.NormFloat64()
		}
		return row
	}

	// Commission the monitor on normal operation.
	cal, err := dataset.New(historian.VarNames())
	if err != nil {
		return err
	}
	for i := 0; i < 600; i++ {
		if err := cal.Append(noc()); err != nil {
			return err
		}
	}
	sys, err := core.Calibrate(cal, core.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "monitor calibrated on %d NOC observations\n", cal.Rows())

	// The monitoring endpoint: fieldbus server -> pairing ingest -> fleet.
	fl, err := pcsmon.NewFleet(sys, pcsmon.FleetOptions{Workers: 1, EmitEvery: -1, Sample: 9 * time.Second})
	if err != nil {
		return err
	}
	var outMu sync.Mutex
	drained := make(chan struct{})
	verdicts := map[string]*pcsmon.Report{}
	go func() {
		defer close(drained)
		for ev := range fl.Events() {
			switch e := ev.Event.(type) {
			case pcsmon.AlarmRaised:
				outMu.Lock()
				fmt.Fprintf(w, "ALARM [%s/%s] at obs %d (charts %v)\n", ev.Plant, e.View, e.Index, e.Charts)
				outMu.Unlock()
			case pcsmon.VerdictReady:
				verdicts[ev.Plant] = e.Report
			}
		}
	}()
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{
		Window:  512,             // generous: the two collectors' connections race freely
		Timeout: 5 * time.Second, // age horizon far beyond any scheduling skew
		Onset:   armAt,
	}, func(ev pcsmon.FleetEvent) {
		if s, ok := ev.Event.(pcsmon.ViewStalled); ok {
			outMu.Lock()
			fmt.Fprintf(w, "VIEW STALL [%s]: %s frames missing since obs %d\n", ev.Plant, s.View, s.Seq)
			outMu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	srv, err := fieldbus.NewServer("127.0.0.1:0", func(f *fieldbus.Frame) {
		if _, err := pi.OfferFrame(f); err != nil {
			outMu.Lock()
			fmt.Fprintf(w, "ingest error: %v\n", err)
			outMu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	fmt.Fprintf(w, "monitor listening on %s\n", srv.Addr())

	// The two collectors dial the monitor over plain TCP.
	ctrlSide, err := fieldbus.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = ctrlSide.Close() }()
	plantSide, err := fieldbus.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = plantSide.Close() }()

	fmt.Fprintf(w, "streaming %d observations; MitM on the actuator link arms at obs %d…\n", samples, armAt)
	for i := 0; i < samples; i++ {
		truth := noc()
		ctrlView := append([]float64(nil), truth...)
		procView := append([]float64(nil), truth...)
		if i >= armAt {
			if i == armAt {
				outMu.Lock()
				fmt.Fprintln(w, ">>> MitM armed: actuator frames now deliver XMV(3)=0 to the plant")
				outMu.Unlock()
			}
			// The controller keeps raising its command (integrator windup
			// against the missing flow); the plant receives the forged zero.
			ramp := 0.1 * float64(i-armAt)
			if ramp > 15 {
				ramp = 15
			}
			ctrlView[xmv3] = truth[xmv3] + ramp
			procView[xmv3] = 0
		}
		seq := uint64(i)
		if err := ctrlSide.Send(&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: 1, Seq: seq, Values: ctrlView}); err != nil {
			return err
		}
		if err := plantSide.Send(&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: 1, Seq: seq, Values: procView}); err != nil {
			return err
		}
		if err := pi.Tick(time.Now()); err != nil {
			return err
		}
	}
	// Wait until both connections' frame streams have fully arrived (two
	// frames per observation), then finalize the stream.
	deadline := time.Now().Add(30 * time.Second)
	for pi.Stats().Frames < uint64(2*samples) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := pi.Flush(); err != nil {
		return err
	}
	st := pi.Stats()
	outMu.Lock()
	fmt.Fprintf(w, "pairing: %d frames correlated into %d paired + %d orphaned observations\n",
		st.Frames, st.Paired, st.OrphanSensors+st.OrphanActuators)
	outMu.Unlock()

	for _, id := range pi.Plants() {
		if _, err := fl.Detach(id); err != nil {
			return err
		}
	}
	if err := fl.Close(); err != nil {
		return err
	}
	<-drained

	for id, rep := range verdicts {
		fmt.Fprintf(w, "\nplant %s VERDICT: %s", id, rep.Verdict)
		if rep.AttackedVar >= 0 {
			fmt.Fprintf(w, " — localized channel: %s", historian.VarName(rep.AttackedVar))
		}
		fmt.Fprintf(w, "\n  %s\n", rep.Explanation)
	}
	fmt.Fprintln(w, "\nonly the paired cross-view diagnosis can reach this conclusion: each view")
	fmt.Fprintln(w, "alone sees a plausible disturbance; their disagreement proves the forgery.")
	return nil
}
