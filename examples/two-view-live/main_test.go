package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTwoViewLiveEndToEnd runs the live two-view demo in-process: frames
// from both collectors over real TCP sockets, correlated by the pairing
// ingest, must produce the cross-view MitM verdict.
func TestTwoViewLiveEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 260, 130); err != nil {
		t.Fatalf("two-view-live: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"monitor calibrated",
		"monitor listening on",
		">>> MitM armed",
		"ALARM [unit-001/",
		"pairing: ",
		"VERDICT: integrity-attack",
		"localized channel: XMV(3)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "ingest error") {
		t.Errorf("ingest errors surfaced:\n%s", text)
	}
}
