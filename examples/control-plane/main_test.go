package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestControlPlaneEndToEnd runs the two-node control-plane demo
// in-process: config files -> two planes -> rendezvous router -> API-driven
// reload and drain must produce one consistent set of verdicts.
func TestControlPlaneEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("control-plane: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"calibration data: 800 NOC observations",
		"[node-a] control plane up: ops ",
		"[node-b] control plane up: ops ",
		"-> node-a",
		"-> node-b",
		"MitM forges",
		"observations scored live",
		"GET /config: cluster=node-a/2 nodes, auth_token=[redacted]",
		"POST /reload without token: HTTP 401",
		"POST /reload (healthz stall 60s -> 120s): HTTP 200",
		"[node-a] reload 1 applied (healthz stall 2m0s, 0 unit overrides)",
		"POST /reload (fleet.batch changed): HTTP 409 — restart required",
		"POST /drain on node-a: HTTP 200",
		"POST /drain on node-b: HTTP 200",
		"[node-a] drain complete: ",
		"[node-b] drain complete: ",
		"VERDICT: normal",
		"VERDICT: integrity-attack",
		"router forwarded 800 frames (0 unrouted)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "ingest error") {
		t.Errorf("ingest errors surfaced:\n%s", text)
	}
}
