// Control-plane: two `serve` processes split one fleet, operated entirely
// over the HTTP/JSON control API.
//
// The demo stands up the full deployment shape in one process:
//
//   - a typed JSON config file per node (the same document `mspctool serve
//     -config` takes), validated with field-path errors;
//   - two control planes sharing one rendezvous-hash assignment table —
//     each fieldbus unit deterministically belongs to exactly one node, so
//     every ingest edge routes frames identically without coordination;
//   - the ops API driven like an operator would: live per-unit health
//     (GET /units/{id}), config introspection (GET /config, secrets
//     redacted), a bearer-token-gated live reload of the reloadable subset
//     (POST /reload) with non-reloadable changes refused, and a graceful
//     remote drain (POST /drain) that scores every accepted frame before
//     the final per-unit verdicts are reported.
//
// A MitM forges one variable on one unit mid-stream; the node owning that
// unit convicts it as an integrity attack while the other node's unit
// stays normal — one fleet, two processes, one consistent answer.
//
//	go run ./examples/control-plane
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pcsmon"
	"pcsmon/internal/control"
	"pcsmon/internal/control/router"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "control-plane:", err)
		os.Exit(1)
	}
}

// syncWriter serializes the two planes' log goroutines onto one stream.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// prefixWriter tags every log line with its node name.
type prefixWriter struct {
	out    io.Writer
	prefix string
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		if _, err := fmt.Fprintf(p.out, "%s%s\n", p.prefix, line); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

const authToken = "swordfish" // ops.auth_token in both config files

func run(w io.Writer) error {
	out := &syncWriter{w: w}
	dir, err := os.MkdirTemp("", "control-plane-example")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	// Commissioning data: synthetic normal operation around one latent
	// direction, the same discipline the live frames follow below.
	cal := filepath.Join(dir, "cal.csv")
	loadings, err := writeCalibration(cal, 800)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "calibration data: 800 NOC observations\n")

	// One config document per node: identical except cluster.node, exactly
	// like a real two-host deployment. OnsetHour 0.25 at 9 s samples puts
	// the known anomaly onset at observation 100.
	base := control.Config{
		Calibration:   cal,
		SampleSeconds: 9,
		OnsetHour:     0.25,
		Listeners:     control.Listeners{TCP: "127.0.0.1:0"},
		Ops:           control.Ops{Addr: "127.0.0.1:0", AuthToken: authToken},
		Pairing:       control.Pairing{TimeoutSeconds: -1},
		Cluster:       control.Cluster{Nodes: []string{"node-a", "node-b"}},
	}
	nodes := base.Cluster.Nodes
	planes := map[string]*control.Plane{}
	configs := map[string]*control.Config{}
	defer func() {
		for _, p := range planes {
			_ = p.Close()
		}
	}()
	for _, node := range nodes {
		cfg := base
		cfg.Cluster.Node = node
		path := filepath.Join(dir, node+".json")
		data, err := json.MarshalIndent(&cfg, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		loaded, err := control.Load(path) // the `serve -config` path: strict decode + validation
		if err != nil {
			return err
		}
		configs[node] = loaded
		p, err := control.New(loaded, control.Options{
			Out:        &prefixWriter{out: out, prefix: "[" + node + "] "},
			ConfigPath: path,
		})
		if err != nil {
			return err
		}
		planes[node] = p
	}

	// The scale-out seed: every edge computes the same unit→node owner from
	// the membership alone, and the router forwards each frame to the
	// owning plane's ingest.
	tab, err := router.NewTable(nodes...)
	if err != nil {
		return err
	}
	rt, err := router.NewRouter(tab, map[string]router.Sink{
		nodes[0]: planes[nodes[0]].Ingest,
		nodes[1]: planes[nodes[1]].Ingest,
	})
	if err != nil {
		return err
	}
	unitA, unitB, err := pickUnits(tab, nodes[0], nodes[1])
	if err != nil {
		return err
	}
	idA, idB := pcsmon.PlantID(unitA), pcsmon.PlantID(unitB)
	fmt.Fprintf(out, "router: %s -> %s, %s -> %s (rendezvous assignment over %v)\n",
		idA, nodes[0], idB, nodes[1], tab.Nodes())
	// Membership change preview on a scratch table: rendezvous hashing
	// moves only the units the new node wins, ~1/N of the fleet.
	scratch, err := router.NewTable(nodes...)
	if err != nil {
		return err
	}
	moved, err := scratch.Add("node-c")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "router: adding node-c would move only %d of 256 units\n", len(moved))

	// Stream two-view traffic for both units through the router. The MitM
	// forges variable 0 on unitB's actuator link from the onset on: the
	// controller view and the process view diverge — the cross-view
	// signature of an integrity attack.
	const (
		rows  = 200
		shift = 100
	)
	fmt.Fprintf(out, "streaming %d two-view observations per unit; MitM forges %s on %s at obs %d\n",
		rows, historian.VarName(0), idB, shift)
	rng := rand.New(rand.NewSource(17))
	m := historian.NumVars
	for i := 0; i < rows; i++ {
		for _, unit := range []uint8{unitA, unitB} {
			z := rng.NormFloat64()
			ctrl := make([]float64, m)
			for j := 0; j < m; j++ {
				ctrl[j] = 50 + z*loadings[j] + 0.3*rng.NormFloat64()
			}
			proc := append([]float64(nil), ctrl...)
			if unit == unitB && i >= shift {
				ctrl[0] -= 30
				proc[0] += 30
			}
			if err := rt.Route(&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: unit, Seq: uint64(i + 1), Values: ctrl}); err != nil {
				return err
			}
			if err := rt.Route(&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: unit, Seq: uint64(i + 1), Values: proc}); err != nil {
				return err
			}
		}
	}

	// Operate the deployment over the API, as a remote operator would.
	ownerB := planes[tab.Owner(unitB)]
	obs, err := pollUnitObservations(ownerB.OpsURL()+"/units/"+idB, rows)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "GET /units/%s: %d observations scored live\n", idB, obs)

	var live control.Config
	if err := apiGet(planes[nodes[0]].OpsURL()+"/config", &live); err != nil {
		return err
	}
	fmt.Fprintf(out, "GET /config: cluster=%s/%d nodes, auth_token=%s\n",
		live.Cluster.Node, len(live.Cluster.Nodes), live.Ops.AuthToken)

	// Mutations need the bearer token; reads stay open for scrapes.
	code, err := apiPost(planes[nodes[0]].OpsURL()+"/reload", "", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "POST /reload without token: HTTP %d\n", code)

	// The reloadable subset applies in place...
	next := *configs[nodes[0]]
	next.Ops.HealthzStallSeconds = 120
	body, err := json.Marshal(&next)
	if err != nil {
		return err
	}
	if code, err = apiPost(planes[nodes[0]].OpsURL()+"/reload", authToken, body); err != nil {
		return err
	}
	fmt.Fprintf(out, "POST /reload (healthz stall 60s -> 120s): HTTP %d\n", code)

	// ...while anything wired into running goroutines is refused.
	frozen := next
	frozen.Fleet.Batch = 4
	if body, err = json.Marshal(&frozen); err != nil {
		return err
	}
	if code, err = apiPost(planes[nodes[0]].OpsURL()+"/reload", authToken, body); err != nil {
		return err
	}
	fmt.Fprintf(out, "POST /reload (fleet.batch changed): HTTP %d — restart required\n", code)

	// Graceful remote shutdown: POST /drain returns once every accepted
	// frame is scored and the final verdicts are in the report table.
	for _, node := range nodes {
		if code, err = apiPost(planes[node].OpsURL()+"/drain", authToken, nil); err != nil {
			return err
		}
		fmt.Fprintf(out, "POST /drain on %s: HTTP %d\n", node, code)
	}
	for _, node := range nodes {
		if err := planes[node].Close(); err != nil {
			return err
		}
	}

	for _, node := range nodes {
		reports := planes[node].Reports()
		ids := make([]string, 0, len(reports))
		for id := range reports {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			rep := reports[id]
			fmt.Fprintf(out, "\n[%s] unit %s VERDICT: %s\n  %s\n", node, id, rep.Verdict, rep.Explanation)
		}
	}
	fmt.Fprintf(out, "\nrouter forwarded %d frames (%d unrouted): two serve processes, one fleet,\n",
		rt.Forwarded(), rt.Unrouted())
	fmt.Fprintln(out, "and the same verdicts a single node would reach on the same frames.")
	return nil
}

// writeCalibration writes n synthetic NOC rows and returns the latent
// loading vector the live frames must share to be in-population.
func writeCalibration(path string, n int) ([]float64, error) {
	rng := rand.New(rand.NewSource(3))
	m := historian.NumVars
	loadings := make([]float64, m)
	for j := range loadings {
		loadings[j] = rng.NormFloat64()
	}
	d, err := dataset.New(historian.VarNames())
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*loadings[j] + 0.3*rng.NormFloat64()
		}
		if err := d.Append(row); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	if err := d.WriteCSV(f); err != nil {
		return nil, err
	}
	return loadings, nil
}

// pickUnits returns the first unit owned by each node — the demo's two
// monitored plants.
func pickUnits(tab *router.Table, nodeA, nodeB string) (uint8, uint8, error) {
	unitA, unitB, haveA, haveB := uint8(0), uint8(0), false, false
	for u := 0; u < 256 && !(haveA && haveB); u++ {
		switch tab.Owner(uint8(u)) {
		case nodeA:
			if !haveA {
				unitA, haveA = uint8(u), true
			}
		case nodeB:
			if !haveB {
				unitB, haveB = uint8(u), true
			}
		}
	}
	if !haveA || !haveB {
		return 0, 0, fmt.Errorf("rendezvous table assigned no units to one of %s/%s", nodeA, nodeB)
	}
	return unitA, unitB, nil
}

// pollUnitObservations polls GET /units/{id} until the unit's live health
// shows at least want scored observations (scoring is asynchronous behind
// the ingest), returning the observed count.
func pollUnitObservations(url string, want int) (int, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		var doc struct {
			Health struct {
				Observations int `json:"observations"`
			} `json:"health"`
		}
		err := apiGet(url, &doc)
		if err == nil && doc.Health.Observations >= want {
			return doc.Health.Observations, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("unit never reached %d observations (last: %d, %v)", want, doc.Health.Observations, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func apiGet(url string, doc any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(doc)
}

// apiPost issues a control-API mutation and returns the HTTP status code
// (the demo deliberately provokes 401/409 responses).
func apiPost(url, token string, body []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
