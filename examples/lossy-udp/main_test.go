package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestLossyUDPEndToEnd runs the lossy-transport demo in-process: datagrams
// dropped, duplicated and reordered between collectors and monitor must
// still produce the localized cross-view MitM verdict, with the loss
// accounted for rather than silently absorbed.
func TestLossyUDPEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 260, 130); err != nil {
		t.Fatalf("lossy-udp: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"monitor calibrated",
		"monitor listening on udp://",
		">>> MitM armed",
		"ALARM [unit-001/",
		"channel: ",
		" dropped",
		"measured loss rate",
		"VERDICT: integrity-attack",
		"localized channel: XMV(3)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "ingest error") {
		t.Errorf("ingest errors surfaced:\n%s", text)
	}
	if strings.Contains(text, " 0 dropped") {
		t.Errorf("the lossy channel dropped nothing — not exercising loss:\n%s", text)
	}
}
