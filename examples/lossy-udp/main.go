// Lossy-udp: the paper's monitoring topology over a transport that
// actually loses frames — the regime the pairing layer's orphan/gap/
// hold-last machinery was built for.
//
// Two collectors observe the same plant and report over UDP, one datagram
// per frame. Between collectors and monitor sits a lossy channel that
// drops, duplicates, delays and reorders datagrams (seeded, so the demo is
// reproducible); a man-in-the-middle on the actuator path forges XMV(3) to
// zero mid-stream. The monitor never sees a connection — only whatever
// datagrams survive — yet the pairing correlator turns the surviving
// frames into paired cross-view observations, accounts every loss, and
// the diagnosis still concludes what no single view can: the two views
// disagree about XMV(3), an integrity attack, localized.
//
//	go run ./examples/lossy-udp
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"pcsmon"
	"pcsmon/internal/core"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
	"pcsmon/internal/te"
)

func main() {
	if err := run(os.Stdout, 260, 130); err != nil {
		fmt.Fprintln(os.Stderr, "lossy-udp:", err)
		os.Exit(1)
	}
}

// lossyChannel models the unreliable network between a collector and the
// monitor: datagrams are dropped, duplicated, or held back and released
// out of order. Deterministic given its seed.
type lossyChannel struct {
	cli  *fieldbus.UDPClient
	rng  *rand.Rand
	held []*fieldbus.Frame // delayed datagrams awaiting release

	sent, dropped, dups, reordered int
}

func newLossyChannel(cli *fieldbus.UDPClient, seed int64) *lossyChannel {
	return &lossyChannel{cli: cli, rng: rand.New(rand.NewSource(seed))}
}

// send passes one frame through the channel.
func (ch *lossyChannel) send(f *fieldbus.Frame) error {
	r := ch.rng.Float64()
	switch {
	case r < 0.03: // lost in transit
		ch.dropped++
		return nil
	case r < 0.05: // duplicated by a flaky switch
		ch.dups++
		if err := ch.transmit(f); err != nil {
			return err
		}
		return ch.transmit(f)
	case r < 0.12: // delayed: held back, released later out of order
		ch.held = append(ch.held, f.Clone())
		ch.reordered++
		return nil
	}
	if err := ch.transmit(f); err != nil {
		return err
	}
	// Release held datagrams behind fresher traffic (the reorder).
	if len(ch.held) > 0 && ch.rng.Float64() < 0.5 {
		old := ch.held[0]
		ch.held = ch.held[1:]
		return ch.transmit(old)
	}
	return nil
}

// flush releases everything still held.
func (ch *lossyChannel) flush() error {
	for _, f := range ch.held {
		if err := ch.transmit(f); err != nil {
			return err
		}
	}
	ch.held = nil
	return nil
}

func (ch *lossyChannel) transmit(f *fieldbus.Frame) error {
	ch.sent++
	return ch.cli.Send(f)
}

// run streams samples observations, arming the MitM at step armAt.
func run(w io.Writer, samples, armAt int) error {
	const xmv3 = te.NumXMEAS + te.XmvAFeed // XMV(3) observation column

	// The same quick synthetic plant as the two-view-live demo: correlated
	// NOC rows around an operating point.
	m := historian.NumVars
	loadings := make([]float64, m)
	lr := rand.New(rand.NewSource(99))
	for j := range loadings {
		loadings[j] = lr.NormFloat64()
	}
	rng := rand.New(rand.NewSource(7))
	noc := func() []float64 {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*loadings[j] + 0.3*rng.NormFloat64()
		}
		return row
	}

	cal, err := dataset.New(historian.VarNames())
	if err != nil {
		return err
	}
	for i := 0; i < 600; i++ {
		if err := cal.Append(noc()); err != nil {
			return err
		}
	}
	sys, err := core.Calibrate(cal, core.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "monitor calibrated on %d NOC observations\n", cal.Rows())

	// The monitoring endpoint: UDP listener -> pairing ingest -> fleet.
	fl, err := pcsmon.NewFleet(sys, pcsmon.FleetOptions{Workers: 1, EmitEvery: -1, Sample: 9 * time.Second})
	if err != nil {
		return err
	}
	var outMu sync.Mutex
	drained := make(chan struct{})
	verdicts := map[string]*pcsmon.Report{}
	go func() {
		defer close(drained)
		for ev := range fl.Events() {
			switch e := ev.Event.(type) {
			case pcsmon.AlarmRaised:
				outMu.Lock()
				fmt.Fprintf(w, "ALARM [%s/%s] at obs %d (charts %v)\n", ev.Plant, e.View, e.Index, e.Charts)
				outMu.Unlock()
			case pcsmon.VerdictReady:
				verdicts[ev.Plant] = e.Report
			}
		}
	}()
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{
		Window:  64,              // the reorder depth the lossy channel must stay inside
		Timeout: 2 * time.Second, // wall-clock horizon for datagrams that never arrive
		Onset:   armAt,
	}, func(ev pcsmon.FleetEvent) {
		if s, ok := ev.Event.(pcsmon.ViewStalled); ok {
			outMu.Lock()
			fmt.Fprintf(w, "VIEW STALL [%s]: %s frames missing since obs %d\n", ev.Plant, s.View, s.Seq)
			outMu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	srv, err := fieldbus.NewUDPServer("127.0.0.1:0", func(f *fieldbus.Frame) {
		if _, err := pi.OfferFrame(f); err != nil {
			outMu.Lock()
			fmt.Fprintf(w, "ingest error: %v\n", err)
			outMu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	fmt.Fprintf(w, "monitor listening on udp://%s\n", srv.Addr())

	// Each collector sends through its own lossy channel.
	ctrlCli, err := fieldbus.DialUDP(srv.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = ctrlCli.Close() }()
	plantCli, err := fieldbus.DialUDP(srv.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = plantCli.Close() }()
	ctrlNet := newLossyChannel(ctrlCli, 41)
	plantNet := newLossyChannel(plantCli, 42)

	fmt.Fprintf(w, "streaming %d observations through a lossy network; MitM arms at obs %d…\n", samples, armAt)
	for i := 0; i < samples; i++ {
		truth := noc()
		ctrlView := append([]float64(nil), truth...)
		procView := append([]float64(nil), truth...)
		if i >= armAt {
			if i == armAt {
				outMu.Lock()
				fmt.Fprintln(w, ">>> MitM armed: actuator datagrams now deliver XMV(3)=0 to the plant")
				outMu.Unlock()
			}
			ramp := 0.1 * float64(i-armAt)
			if ramp > 15 {
				ramp = 15
			}
			ctrlView[xmv3] = truth[xmv3] + ramp
			procView[xmv3] = 0
		}
		seq := uint64(i)
		if err := ctrlNet.send(&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: 1, Seq: seq, Values: ctrlView}); err != nil {
			return err
		}
		if err := plantNet.send(&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: 1, Seq: seq, Values: procView}); err != nil {
			return err
		}
		if i%32 == 31 {
			time.Sleep(time.Millisecond) // loopback pacing
		}
		if err := pi.Tick(time.Now()); err != nil {
			return err
		}
	}
	if err := ctrlNet.flush(); err != nil {
		return err
	}
	if err := plantNet.flush(); err != nil {
		return err
	}
	// Wait until the surviving datagrams have been ingested (the count
	// stops moving), then finalize the stream.
	attempted := uint64(ctrlNet.sent + plantNet.sent)
	deadline := time.Now().Add(30 * time.Second)
	for pi.Stats().Frames < attempted && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		if err := pi.Tick(time.Now()); err != nil {
			return err
		}
	}
	if err := pi.Flush(); err != nil {
		return err
	}
	st := pi.Stats()
	ust := srv.Stats()
	outMu.Lock()
	fmt.Fprintf(w, "channel: %d datagrams sent, %d dropped, %d duplicated, %d delayed/reordered\n",
		ctrlNet.sent+plantNet.sent, ctrlNet.dropped+plantNet.dropped,
		ctrlNet.dups+plantNet.dups, ctrlNet.reordered+plantNet.reordered)
	fmt.Fprintf(w, "monitor:  %d datagrams received (%d corrupt), %d paired, %d orphaned, %d gap obs, %d dup — measured loss rate %.1f%%\n",
		ust.Datagrams, ust.Corrupt, st.Paired, st.OrphanSensors+st.OrphanActuators,
		st.GapSeqs, st.Duplicates, 100*st.LossRate())
	outMu.Unlock()

	for _, id := range pi.Plants() {
		if _, err := fl.Detach(id); err != nil {
			return err
		}
	}
	if err := fl.Close(); err != nil {
		return err
	}
	<-drained

	for id, rep := range verdicts {
		fmt.Fprintf(w, "\nplant %s VERDICT: %s", id, rep.Verdict)
		if rep.AttackedVar >= 0 {
			fmt.Fprintf(w, " — localized channel: %s", historian.VarName(rep.AttackedVar))
		}
		fmt.Fprintf(w, "\n  %s\n", rep.Explanation)
	}
	fmt.Fprintln(w, "\nthe network lost, duplicated and reordered datagrams; the pairing layer")
	fmt.Fprintln(w, "accounted every one, and the cross-view diagnosis still holds.")
	return nil
}
