package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDisturbanceVsAttackEndToEnd runs the example in-process with a
// single short run per scenario: the disturbance must be classified as
// such and the integrity attack must be localized to XMV(3).
func TestDisturbanceVsAttackEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 1, 12); err != nil {
		t.Fatalf("disturbance-vs-attack: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"=== Disturbance IDV(6): A feed loss ===",
		"verdict: disturbance",
		"=== Integrity attack on XMV(3): valve forced closed ===",
		"verdict: integrity-attack — forged channel XMV(3)",
		"oMEDA — controller view",
		"oMEDA — process view",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
