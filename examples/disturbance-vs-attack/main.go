// Disturbance-vs-attack: the paper's central experiment. Runs scenario (a)
// — disturbance IDV(6), loss of feed A — and scenario (b) — an integrity
// attack forcing the A-feed valve XMV(3) closed. From the controller's
// point of view the two are nearly indistinguishable (XMEAS(1) collapses in
// both, the plant shuts down hours later in both); only the process-level
// view separates them.
//
//	go run ./examples/disturbance-vs-attack
package main

import (
	"fmt"
	"io"
	"os"

	"pcsmon"
	"pcsmon/internal/historian"
	"pcsmon/internal/plot"
)

func main() {
	if err := run(os.Stdout, 2, 14); err != nil {
		fmt.Fprintln(os.Stderr, "disturbance-vs-attack:", err)
		os.Exit(1)
	}
}

// run executes the central experiment over runs repetitions of hours each
// (the end-to-end test uses a single shorter run).
func run(w io.Writer, runs int, hours float64) error {
	fmt.Fprintln(w, "building lab…")
	lab, err := pcsmon.NewLab(pcsmon.LabConfig{
		CalibrationRuns:  3,
		CalibrationHours: 16,
		Seed:             7,
	})
	if err != nil {
		return err
	}

	const onset = 4.0
	scenarios := pcsmon.PaperScenarios(onset)[:2] // (a) IDV(6), (b) XMV(3) attack
	for _, sc := range scenarios {
		fmt.Fprintf(w, "\n=== %s ===\n", sc.Name)
		res, err := lab.RunScenarioFor(sc, runs, hours)
		if err != nil {
			return err
		}
		rep := res.Runs[0].Report

		fmt.Fprintf(w, "verdict: %s", rep.Verdict)
		if rep.AttackedVar >= 0 {
			fmt.Fprintf(w, " — forged channel %s", pcsmon.VarName(rep.AttackedVar))
		}
		fmt.Fprintf(w, "\n%s\n", rep.Explanation)
		if res.Runs[0].Shutdown {
			fmt.Fprintf(w, "plant shut down %.2f h after onset\n", res.Runs[0].ShutdownHour-onset)
		}

		// Show what each view blames: with bars pooled over the runs, the
		// controller view looks the same for both scenarios; the process
		// view does not.
		for _, view := range []struct {
			name string
			prof []float64
		}{
			{"controller view", res.PooledOMEDACtrl},
			{"process view", res.PooledOMEDAProc},
		} {
			names, vals := pick(view.prof, 6)
			bars, err := plot.ASCIIBars("oMEDA — "+view.name, names, vals, 51)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, bars)
		}
	}
	fmt.Fprintln(w, "note how both controller views blame XMEAS(1) (negative), while only the")
	fmt.Fprintln(w, "process view of the attack shows XMV(3) forced below normal.")
	return nil
}

// pick returns the n largest-|bar| variables in variable order.
func pick(vals []float64, n int) ([]string, []float64) {
	type kv struct {
		j int
		a float64
	}
	ranked := make([]kv, len(vals))
	for j, v := range vals {
		a := v
		if a < 0 {
			a = -a
		}
		ranked[j] = kv{j, a}
	}
	for i := 0; i < n && i < len(ranked); i++ {
		best := i
		for k := i + 1; k < len(ranked); k++ {
			if ranked[k].a > ranked[best].a {
				best = k
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	if n > len(ranked) {
		n = len(ranked)
	}
	sel := ranked[:n]
	for i := 0; i < len(sel); i++ {
		for k := i + 1; k < len(sel); k++ {
			if sel[k].j < sel[i].j {
				sel[i], sel[k] = sel[k], sel[i]
			}
		}
	}
	names := make([]string, n)
	out := make([]float64, n)
	for i, s := range sel {
		names[i] = historian.VarName(s.j)
		out[i] = vals[s.j]
	}
	return names, out
}
