// Flight-recorder: the durable capture store as the fleet's
// incident-response workflow.
//
// A recorder runs beside the plant: two redundant collectors tap the same
// wire (every frame arrives twice) and everything is written into a
// rotating, index-sealed segment chain — bounded segments, cadence
// flushes, a sidecar index per sealed segment. Mid-run an attacker forges
// XMV(3) on unit 1; shortly after, the recorder host loses power, tearing
// the last record of the unsealed final segment.
//
// Then the incident response: reopen the chain, seek straight to the
// minutes around the incident (the index skips the sealed segments before
// the window without decoding a record), suppress the second collector's
// redundant copies with a dedup window, tolerate the torn tail as a typed
// warning — and replay the surviving frames through the same pairing →
// fleet path the live monitor runs, to a localized cross-view verdict.
//
//	go run ./examples/flight-recorder
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pcsmon"
	"pcsmon/internal/core"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
	"pcsmon/internal/te"
)

func main() {
	dir, err := os.MkdirTemp("", "flight-recorder")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flight-recorder:", err)
		os.Exit(1)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	if err := run(os.Stdout, dir, 260, 130); err != nil {
		fmt.Fprintln(os.Stderr, "flight-recorder:", err)
		os.Exit(1)
	}
}

// run records `samples` observations (the attack arms at `armAt`), kills
// the recorder uncleanly, then replays the incident window from the chain.
func run(w io.Writer, dir string, samples, armAt int) error {
	const (
		xmv3 = te.NumXMEAS + te.XmvAFeed // the forged observation column
		step = 100 * time.Millisecond    // capture-time spacing of observations
	)

	// Calibrate the monitor on synthetic NOC rows (the same quick plant as
	// the other demos: correlated noise around an operating point).
	m := historian.NumVars
	loadings := make([]float64, m)
	lr := rand.New(rand.NewSource(99))
	for j := range loadings {
		loadings[j] = lr.NormFloat64()
	}
	rng := rand.New(rand.NewSource(7))
	noc := func() []float64 {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*loadings[j] + 0.3*rng.NormFloat64()
		}
		return row
	}
	cal, err := dataset.New(historian.VarNames())
	if err != nil {
		return err
	}
	for i := 0; i < 600; i++ {
		if err := cal.Append(noc()); err != nil {
			return err
		}
	}
	sys, err := core.Calibrate(cal, core.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "monitor calibrated on %d NOC observations\n", cal.Rows())

	// ---- Part 1: the flight recorder runs beside the plant. ----
	//
	// 128 KiB segments rotate the chain every few hundred records; the
	// explicit Flush below stands in for the live recorder's -record-flush
	// cadence (we manage the cadence ourselves, so the store's own timer
	// is off).
	base := filepath.Join(dir, "plant")
	st, err := fieldbus.OpenCaptureStore(base, fieldbus.StoreOptions{
		SegmentBytes: 128 << 10,
		FlushEvery:   -1,
	})
	if err != nil {
		return err
	}
	tap := func(f *fieldbus.Frame, at time.Duration) error {
		// Collector A and collector B see the same wire: two identical
		// copies of every frame land in the store.
		if err := st.WriteAt(f, at); err != nil {
			return err
		}
		return st.WriteAt(f, at)
	}
	fmt.Fprintf(w, "recording 2 units × 2 views × 2 collectors to %s…\n", base)
	for i := 0; i < samples; i++ {
		at := time.Duration(i) * step
		for unit := uint8(0); unit < 2; unit++ {
			truth := noc()
			ctrlView := append([]float64(nil), truth...)
			procView := append([]float64(nil), truth...)
			if unit == 1 && i >= armAt {
				if i == armAt {
					fmt.Fprintf(w, ">>> attack armed at obs %d (capture time %v): XMV(3) forged on unit 1\n", armAt, at)
				}
				ramp := 0.1 * float64(i-armAt)
				if ramp > 15 {
					ramp = 15
				}
				ctrlView[xmv3] = truth[xmv3] + ramp
				procView[xmv3] = 0
			}
			seq := uint64(i + 1)
			if err := tap(&fieldbus.Frame{Type: fieldbus.FrameSensor, Unit: unit, Seq: seq, Values: ctrlView}, at); err != nil {
				return err
			}
			if err := tap(&fieldbus.Frame{Type: fieldbus.FrameActuator, Unit: unit, Seq: seq, Values: procView}, at); err != nil {
				return err
			}
		}
		if i%32 == 31 { // the crash-durability flush cadence
			if err := st.Flush(); err != nil {
				return err
			}
		}
	}
	stats := st.Stats()
	fmt.Fprintf(w, "recorder: %d frames (%v of plant time) in %d segments, %d rotations, %d cadence flushes\n",
		stats.Frames, stats.Span, stats.Segments+1, stats.Rotations, stats.Flushes)

	// ---- Power loss. ----
	//
	// The recorder process dies without Close: the final segment is never
	// sealed (no index sidecar), and the torn write leaves its last record
	// incomplete. Everything up to the previous cadence flush survives.
	if err := st.Flush(); err != nil {
		return err
	}
	segs, err := filepath.Glob(base + ".*.pcscap")
	if err != nil || len(segs) < 2 {
		return fmt.Errorf("chain did not rotate: %v (%d segments)", err, len(segs))
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		return err
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		return err
	}
	fmt.Fprintf(w, ">>> power loss: recorder killed mid-record — %s unsealed, tail torn\n", filepath.Base(last))

	// ---- Part 2: incident response from the chain. ----
	//
	// Replay only the window around the incident. Sealed segments wholly
	// before the window are skipped via their index sidecars; the dedup
	// window collapses the two collectors' copies back into one stream.
	from := time.Duration(armAt-60) * step
	cr, err := fieldbus.OpenCaptureChain(base, fieldbus.ChainOptions{From: from})
	if err != nil {
		return err
	}
	defer func() { _ = cr.Close() }()
	fl, err := pcsmon.NewFleet(sys, pcsmon.FleetOptions{Workers: 1, EmitEvery: -1, Sample: 9 * time.Second})
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range fl.Events() {
			if e, ok := ev.Event.(pcsmon.AlarmRaised); ok {
				fmt.Fprintf(w, "ALARM [%s/%s] at obs %d (charts %v)\n", ev.Plant, e.View, e.Index, e.Charts)
			}
		}
	}()
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{
		Window: 16,
		Dedup:  8, // two taps: the adjacent redundant copy is suppressed
		Onset:  60,
		OnAttach: func(plant string) {
			fmt.Fprintf(w, "plant %s attached\n", plant)
		},
	}, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replaying window [%v, end] of %d segments…\n", from, cr.Segments())
	for {
		_, f, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if _, err := pi.OfferFrame(f); err != nil {
			return err
		}
	}
	if terr := cr.Truncated(); terr != nil {
		fmt.Fprintf(w, "warning: %v — replaying the %d readable frames\n", terr, cr.Delivered())
	}
	if err := pi.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "window seek: %d of %d segments skipped via index (%d records decoded, %d delivered)\n",
		cr.SegmentsSkipped(), cr.Segments(), cr.RecordsRead(), cr.Delivered())
	fmt.Fprintf(w, "dedup: %d redundant frames suppressed — two collectors, one correlator\n", pi.Deduped())
	pst := pi.Stats()
	fmt.Fprintf(w, "pairing: %d frames -> %d paired, %d dup, loss rate %.1f%%\n",
		pst.Frames, pst.Paired, pst.Duplicates, 100*pst.LossRate())

	ids := pi.Plants()
	sort.Strings(ids)
	reports := map[string]*pcsmon.Report{}
	for _, id := range ids {
		rep, err := fl.Detach(id)
		if err != nil {
			return err
		}
		reports[id] = rep
	}
	if err := fl.Close(); err != nil {
		return err
	}
	<-drained

	for _, id := range ids {
		rep := reports[id]
		fmt.Fprintf(w, "\nplant %s VERDICT: %s", id, rep.Verdict)
		if rep.AttackedVar >= 0 {
			fmt.Fprintf(w, " — localized channel: %s", historian.VarName(rep.AttackedVar))
		}
		fmt.Fprintf(w, "\n  %s\n", rep.Explanation)
	}
	fmt.Fprintln(w, "\nthe recorder died mid-write, half the chain was never read, every frame")
	fmt.Fprintln(w, "arrived twice — and the replayed window still localizes the forgery.")
	return nil
}
