package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlightRecorderEndToEnd runs the incident-response demo in-process:
// a rotated two-tap recording, an unclean recorder death, then a windowed,
// deduped replay of the chain that must still localize the forged channel.
func TestFlightRecorderEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, t.TempDir(), 260, 130); err != nil {
		t.Fatalf("flight-recorder: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"monitor calibrated",
		">>> attack armed at obs 130",
		"rotations",
		">>> power loss",
		"plant unit-000 attached",
		"plant unit-001 attached",
		"warning: ",
		"readable frames",
		"window seek: ",
		"segments skipped via index",
		"dedup: ",
		"ALARM [unit-001/",
		"plant unit-000 VERDICT: normal",
		"plant unit-001 VERDICT: integrity-attack",
		"localized channel: XMV(3)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The index seek must actually skip work, and the dedup must actually
	// suppress the second tap.
	if strings.Contains(text, "window seek: 0 of") {
		t.Errorf("no segments skipped — the index was not used:\n%s", text)
	}
	if strings.Contains(text, "dedup: 0 redundant") {
		t.Errorf("nothing deduped — the two-tap stream was not exercised:\n%s", text)
	}
	if strings.Contains(text, " 0 paired") {
		t.Errorf("no observations paired:\n%s", text)
	}
}
