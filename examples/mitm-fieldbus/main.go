// MitM-fieldbus: a live demonstration of the paper's threat model over a
// real TCP fieldbus. The plant publishes sensor frames to a controller
// endpoint; the actuator frames travel back through a man-in-the-middle
// proxy that rewrites XMV(3) to zero mid-stream — the same attack the
// simulation scenarios inject, here performed on actual sockets with the
// unauthenticated frame protocol of internal/fieldbus.
//
//	go run ./examples/mitm-fieldbus
package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pcsmon/internal/fieldbus"
	"pcsmon/internal/plantctl"
	"pcsmon/internal/te"
)

func main() {
	if err := run(os.Stdout, 400, 200); err != nil {
		fmt.Fprintln(os.Stderr, "mitm-fieldbus:", err)
		os.Exit(1)
	}
}

// run drives samples closed-loop steps over the TCP fieldbus, arming the
// MitM rewrite at step armAt (the end-to-end test uses a shorter loop).
func run(w io.Writer, samples, armAt int) error {
	// The "plant side": a TCP endpoint receiving actuator frames.
	var mu sync.Mutex
	latestXMV := append([]float64(nil), te.BaseXMV[:]...)
	plantSrv, err := fieldbus.NewServer("127.0.0.1:0", func(f *fieldbus.Frame) {
		if f.Type != fieldbus.FrameActuator {
			return
		}
		mu.Lock()
		copy(latestXMV, f.Values)
		mu.Unlock()
	})
	if err != nil {
		return err
	}
	defer func() { _ = plantSrv.Close() }()

	// The attacker: a MitM proxy between controller and plant that forces
	// XMV(3) to zero once armed.
	var armed bool
	proxy, err := fieldbus.NewMitMProxy("127.0.0.1:0", plantSrv.Addr(), func(f *fieldbus.Frame) {
		mu.Lock()
		on := armed
		mu.Unlock()
		if on && f.Type == fieldbus.FrameActuator && len(f.Values) > te.XmvAFeed {
			f.Values[te.XmvAFeed] = 0
		}
	})
	if err != nil {
		return err
	}
	defer func() { _ = proxy.Close() }()

	// The controller dials what it believes is the plant.
	cli, err := fieldbus.Dial(proxy.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = cli.Close() }()

	fmt.Fprintf(w, "plant endpoint %s, MitM proxy %s\n", plantSrv.Addr(), proxy.Addr())

	proc, err := te.New(te.Config{Seed: 3, StepSeconds: 4.5})
	if err != nil {
		return err
	}
	ctrl, err := plantctl.NewTEController()
	if err != nil {
		return err
	}
	dt := 4.5 / 3600.0

	readXMV := func() []float64 {
		mu.Lock()
		defer mu.Unlock()
		return append([]float64(nil), latestXMV...)
	}

	fmt.Fprintf(w, "running closed loop over TCP; attack arms after %d samples…\n", armAt)
	var seq uint64
	for i := 0; i < samples; i++ {
		if i == armAt {
			mu.Lock()
			armed = true
			mu.Unlock()
			fmt.Fprintln(w, ">>> attacker armed: XMV(3) frames are now rewritten to 0")
		}
		cmds, err := ctrl.Step(proc.Measurements(), dt)
		if err != nil {
			return err
		}
		seq++
		if err := cli.Send(&fieldbus.Frame{Type: fieldbus.FrameActuator, Seq: seq, Values: cmds}); err != nil {
			return err
		}
		// Give the frame time to traverse proxy → plant endpoint.
		deadline := time.Now().Add(time.Second)
		for {
			received := readXMV()
			if received[te.XmvAFeed] == cmds[te.XmvAFeed] ||
				(i >= armAt && received[te.XmvAFeed] == 0) || time.Now().After(deadline) {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		received := readXMV()
		for j, v := range received {
			if err := proc.SetXMV(j, v); err != nil {
				return err
			}
		}
		if err := proc.Step(); err != nil {
			fmt.Fprintf(w, "plant shut down: %v\n", err)
			break
		}
		if i%50 == 0 || i == armAt+1 {
			m := proc.TrueMeasurements()
			fmt.Fprintf(w, "sample %3d  sent XMV(3)=%6.2f%%  received XMV(3)=%6.2f%%  real A feed=%.4f kscmh\n",
				i, cmds[te.XmvAFeed], received[te.XmvAFeed], m[te.XmeasAFeed])
		}
	}
	m := proc.TrueMeasurements()
	fmt.Fprintf(w, "\nfinal: controller commands XMV(3)=%.1f%%, plant receives 0%%, real flow %.4f kscmh\n",
		ctrl.Outputs()[te.XmvAFeed], m[te.XmeasAFeed])
	fmt.Fprintln(w, "the divergence between sent and received XMV(3) is exactly what the")
	fmt.Fprintln(w, "two-view monitor (internal/core) detects and localizes.")
	return nil
}
