package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestMitmFieldbusEndToEnd runs the live TCP demo in-process with a short
// loop: the proxy must rewrite XMV(3) once armed and the closing summary
// must report the sent/received divergence.
func TestMitmFieldbusEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 160, 80); err != nil {
		t.Fatalf("mitm-fieldbus: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"plant endpoint",
		">>> attacker armed: XMV(3) frames are now rewritten to 0",
		"final: controller commands XMV(3)=",
		"plant receives 0%",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Before arming, sent == received; after, received is forced to zero.
	if !strings.Contains(text, "received XMV(3)=  0.00%") {
		t.Errorf("no zeroed received command in output:\n%s", text)
	}
}
