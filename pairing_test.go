package pcsmon_test

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"pcsmon"
	"pcsmon/internal/core"
	"pcsmon/internal/dataset"
	"pcsmon/internal/fieldbus"
	"pcsmon/internal/historian"
)

// pairingTestSystem calibrates a small synthetic system (milliseconds, not
// the plant-simulation lab) for the pairing facade tests.
func pairingTestSystem(tb testing.TB) *pcsmon.System {
	tb.Helper()
	rng := rand.New(rand.NewSource(99))
	d, err := dataset.New(historian.VarNames())
	if err != nil {
		tb.Fatal(err)
	}
	m := historian.NumVars
	w := make([]float64, m)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	for i := 0; i < 600; i++ {
		z := rng.NormFloat64()
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = 50 + z*w[j] + 0.3*rng.NormFloat64()
		}
		if err := d.Append(row); err != nil {
			tb.Fatal(err)
		}
	}
	sys, err := core.Calibrate(d, core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// pairingRows generates one unit's paired stream with the calibration's
// latent structure: from row shiftFrom, the controller view of channel
// shiftCh moves by -delta and the process view by +delta (delta 0 = NOC).
func pairingRows(seed int64, n, shiftCh, shiftFrom int, delta float64) (ctrl, proc [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	m := historian.NumVars
	w := make([]float64, m)
	wr := rand.New(rand.NewSource(99))
	for j := range w {
		w[j] = wr.NormFloat64()
	}
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		c := make([]float64, m)
		for j := 0; j < m; j++ {
			c[j] = 50 + z*w[j] + 0.3*rng.NormFloat64()
		}
		p := append([]float64(nil), c...)
		if delta != 0 && i >= shiftFrom {
			c[shiftCh] -= delta
			p[shiftCh] += delta
		}
		ctrl = append(ctrl, c)
		proc = append(proc, p)
	}
	return ctrl, proc
}

// pairingFleet builds a fleet plus a drained event collector.
func pairingFleet(t *testing.T, sys *pcsmon.System) (*pcsmon.Fleet, func() []pcsmon.FleetEvent) {
	t.Helper()
	fl, err := pcsmon.NewFleet(sys, pcsmon.FleetOptions{Workers: 2, EmitEvery: -1, Sample: 9 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []pcsmon.FleetEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range fl.Events() {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	}()
	return fl, func() []pcsmon.FleetEvent {
		if err := fl.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		mu.Lock()
		defer mu.Unlock()
		return events
	}
}

// TestPairingIngestTwoView: the full live path — interleaved sensor and
// actuator frames of three units (one quiet, one with cross-view
// divergence, one with a mid-stream actuator blackout) through the pairing
// ingest into the fleet. The diverging unit must be classified as an
// integrity attack, the blacked-out one as DoS with a ViewStalled event,
// and the quiet one as normal.
func TestPairingIngestTwoView(t *testing.T) {
	sys := pairingTestSystem(t)
	fl, finish := pairingFleet(t, sys)
	const (
		rows  = 260
		onset = 130
	)
	var (
		pairMu   sync.Mutex
		pairEvs  []pcsmon.FleetEvent
		attached []string
	)
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{
		Window:     16,
		StallAfter: 8,
		Onset:      onset,
		OnAttach:   func(plant string) { attached = append(attached, plant) },
	}, func(ev pcsmon.FleetEvent) {
		pairMu.Lock()
		pairEvs = append(pairEvs, ev)
		pairMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	ctrl0, proc0 := pairingRows(11, rows, 0, onset, 0)  // quiet
	ctrl1, proc1 := pairingRows(12, rows, 0, onset, 25) // cross-view divergence
	ctrl2, proc2 := pairingRows(13, rows, 5, onset, 0)  // quiet data...
	for i := onset; i < rows; i++ {
		ctrl2[i][5] += 25 // ...but the plant moves while the actuator view is dark
	}

	for i := 0; i < rows; i++ {
		seq := uint64(i)
		for u, views := range map[uint8][2][][]float64{
			0: {ctrl0, proc0}, 1: {ctrl1, proc1}, 2: {ctrl2, proc2},
		} {
			if err := pi.OfferSensor(u, seq, views[0][i]); err != nil {
				t.Fatal(err)
			}
			blackout := u == 2 && i >= onset
			if !blackout {
				if err := pi.OfferActuator(u, seq, views[1][i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := pi.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := pi.Plants(); len(got) != 3 || len(attached) != 3 {
		t.Fatalf("plants %v, attach callbacks %v", got, attached)
	}

	verdicts := map[string]pcsmon.Verdict{}
	reports := map[string]*pcsmon.Report{}
	for _, id := range pi.Plants() {
		rep, err := fl.Detach(id)
		if err != nil {
			t.Fatal(err)
		}
		verdicts[id] = rep.Verdict
		reports[id] = rep
	}
	finish()

	if v := verdicts[pcsmon.PlantID(0)]; v != pcsmon.VerdictNormal {
		t.Errorf("quiet unit verdict %v", v)
	}
	if v := verdicts[pcsmon.PlantID(1)]; v != pcsmon.VerdictIntegrityAttack {
		t.Errorf("diverging unit verdict %v (%s)", v, reports[pcsmon.PlantID(1)].Explanation)
	}
	if v := verdicts[pcsmon.PlantID(2)]; v != pcsmon.VerdictDoS {
		t.Errorf("blackout unit verdict %v (%s) — want DoS-consistent, not silent single-view monitoring",
			v, reports[pcsmon.PlantID(2)].Explanation)
	}

	pairMu.Lock()
	defer pairMu.Unlock()
	var stalls, heldDrops int
	for _, ev := range pairEvs {
		switch e := ev.Event.(type) {
		case pcsmon.ViewStalled:
			stalls++
			if e.Unit != 2 || e.View != "actuator" || ev.Plant != pcsmon.PlantID(2) {
				t.Errorf("stall event %+v (plant %s)", e, ev.Plant)
			}
		case pcsmon.PairDropped:
			if e.Held {
				heldDrops++
				if e.Unit != 2 || e.Kind != "orphan-sensor" {
					t.Errorf("held drop %+v", e)
				}
			}
		}
	}
	if stalls != 1 {
		t.Errorf("%d ViewStalled events, want 1", stalls)
	}
	if heldDrops != rows-onset {
		t.Errorf("%d held-orphan events, want %d", heldDrops, rows-onset)
	}

	st := pi.Stats()
	if st.Units != 3 || st.Stalls != 1 {
		t.Errorf("stats %+v", st)
	}
	if sum := 2*st.Paired + st.OrphanSensors + st.OrphanActuators + st.Duplicates + st.Stale + st.Outliers + st.PendingFrames; st.Frames != sum {
		t.Errorf("frame conservation: %+v", st)
	}
}

// TestPairingIngestParity: frames through the pairing ingest must produce
// a report bit-identical to the same rows pushed straight into the fleet —
// even when the frame stream is skewed, bursty and duplicated.
func TestPairingIngestParity(t *testing.T) {
	sys := pairingTestSystem(t)
	const (
		rows  = 220
		onset = 110
	)
	ctrl, proc := pairingRows(21, rows, 3, onset, 20)

	direct, finishDirect := pairingFleet(t, sys)
	if err := direct.Attach("unit-000", onset); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := direct.Push("unit-000", ctrl[i], proc[i]); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := direct.Detach("unit-000")
	if err != nil {
		t.Fatal(err)
	}
	finishDirect()

	paired, finishPaired := pairingFleet(t, sys)
	pi, err := paired.NewPairingIngest(pcsmon.PairingOptions{Window: 32, Onset: onset}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial but window-bounded interleaving: the actuator view runs
	// 5 observations behind, frames inside each 8-obs burst are reversed,
	// and every 7th frame is duplicated.
	type fr struct {
		typ fieldbus.FrameType
		seq uint64
	}
	var frames []fr
	for i := 0; i < rows; i++ {
		frames = append(frames, fr{fieldbus.FrameSensor, uint64(i)})
		if i >= 5 {
			frames = append(frames, fr{fieldbus.FrameActuator, uint64(i - 5)})
		}
	}
	for i := rows - 5; i < rows; i++ {
		frames = append(frames, fr{fieldbus.FrameActuator, uint64(i)})
	}
	for start := 0; start < len(frames); start += 8 {
		end := start + 8
		if end > len(frames) {
			end = len(frames)
		}
		sub := frames[start:end]
		for l, r := 0, len(sub)-1; l < r; l, r = l+1, r-1 {
			sub[l], sub[r] = sub[r], sub[l]
		}
	}
	offerOne := func(f fr) error {
		if f.typ == fieldbus.FrameSensor {
			return pi.OfferSensor(0, f.seq, ctrl[f.seq])
		}
		return pi.OfferActuator(0, f.seq, proc[f.seq])
	}
	for i, f := range frames {
		if err := offerOne(f); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := offerOne(f); err != nil { // duplicate flood
				t.Fatal(err)
			}
		}
	}
	if err := pi.Flush(); err != nil {
		t.Fatal(err)
	}
	st := pi.Stats()
	if st.Paired != rows {
		t.Fatalf("reordered replay lost pairings: %+v", st)
	}
	if st.Duplicates+st.Stale == 0 {
		t.Fatalf("duplicate flood unaccounted: %+v", st)
	}
	rep, err := paired.Detach("unit-000")
	if err != nil {
		t.Fatal(err)
	}
	finishPaired()

	if !reflect.DeepEqual(rep, golden) {
		t.Errorf("paired-ingest report differs from direct push:\npaired: %+v\ndirect: %+v", rep, golden)
	}
	if golden.Verdict != pcsmon.VerdictIntegrityAttack {
		t.Errorf("golden verdict %v (%s)", golden.Verdict, golden.Explanation)
	}
}

// TestPairingIngestBytes: the wire-bytes entry point decodes and pairs
// marshalled frames.
func TestPairingIngestBytes(t *testing.T) {
	sys := pairingTestSystem(t)
	fl, finish := pairingFleet(t, sys)
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, proc := pairingRows(31, 40, 0, 0, 0)
	var buf []byte
	for i := 0; i < 40; i++ {
		for _, f := range []fieldbus.Frame{
			{Type: fieldbus.FrameSensor, Unit: 9, Seq: uint64(i), Values: ctrl[i]},
			{Type: fieldbus.FrameActuator, Unit: 9, Seq: uint64(i), Values: proc[i]},
		} {
			if buf, err = f.MarshalTo(buf); err != nil {
				t.Fatal(err)
			}
			if err := pi.OfferBytes(buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pi.OfferBytes([]byte{1, 2, 3}); err == nil {
		t.Error("malformed bytes accepted")
	}
	if err := pi.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := pi.Stats(); st.Paired != 40 || st.Units != 1 {
		t.Errorf("stats %+v", st)
	}
	rep, err := fl.Detach(pcsmon.PlantID(9))
	if err != nil {
		t.Fatal(err)
	}
	finish()
	if rep.Verdict != pcsmon.VerdictNormal {
		t.Errorf("verdict %v", rep.Verdict)
	}
}

// TestPairingIngestDedup: with Dedup set, the frame-level entry points
// suppress content-identical frames — two redundant collectors tapping the
// same wire feed one correlator without polluting duplicate accounting.
func TestPairingIngestDedup(t *testing.T) {
	sys := pairingTestSystem(t)
	fl, finish := pairingFleet(t, sys)
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{Dedup: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 40
	ctrl, proc := pairingRows(41, rows, 0, 0, 0)
	var buf []byte
	for i := 0; i < rows; i++ {
		for _, f := range []fieldbus.Frame{
			{Type: fieldbus.FrameSensor, Unit: 7, Seq: uint64(i), Values: ctrl[i]},
			{Type: fieldbus.FrameActuator, Unit: 7, Seq: uint64(i), Values: proc[i]},
		} {
			// First tap delivers the frame...
			offered, err := pi.OfferFrame(&f)
			if err != nil || !offered {
				t.Fatalf("first tap: offered=%v, err=%v", offered, err)
			}
			// ...the second tap's identical copy is suppressed, whichever
			// frame-level entry point it arrives through.
			if i%2 == 0 {
				offered, err = pi.OfferFrame(&f)
				if err != nil || offered {
					t.Fatalf("redundant OfferFrame: offered=%v, err=%v", offered, err)
				}
			} else {
				if buf, err = f.MarshalTo(buf[:0]); err != nil {
					t.Fatal(err)
				}
				if err := pi.OfferBytes(buf); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := pi.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := pi.Deduped(); got != 2*rows {
		t.Errorf("Deduped() = %d, want %d", got, 2*rows)
	}
	// The pairing layer never saw the copies: clean pairing, no duplicates,
	// no loss.
	st := pi.Stats()
	if st.Frames != 2*rows || st.Paired != rows || st.Duplicates != 0 {
		t.Errorf("stats %+v — redundant frames leaked past dedup", st)
	}
	if st.LossRate() != 0 {
		t.Errorf("loss rate %v on a clean deduped feed", st.LossRate())
	}
	rep, err := fl.Detach(pcsmon.PlantID(7))
	if err != nil {
		t.Fatal(err)
	}
	finish()
	if rep.Verdict != pcsmon.VerdictNormal {
		t.Errorf("verdict %v", rep.Verdict)
	}
}

// TestPairingIngestValidation: bad options and closed ingests are
// rejected.
func TestPairingIngestValidation(t *testing.T) {
	sys := pairingTestSystem(t)
	fl, finish := pairingFleet(t, sys)
	defer finish()
	for _, opts := range []pcsmon.PairingOptions{
		{Window: -1},
		{Timeout: -time.Second},
		{Onset: -1},
		{Dedup: -1},
	} {
		if _, err := fl.NewPairingIngest(opts, nil); !errors.Is(err, pcsmon.ErrBadConfig) {
			t.Errorf("%+v: want ErrBadConfig, got %v", opts, err)
		}
	}
	pi, err := fl.NewPairingIngest(pcsmon.PairingOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Close(); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, historian.NumVars)
	if err := pi.OfferSensor(0, 0, row); err == nil {
		t.Error("offer after close accepted")
	}
}
